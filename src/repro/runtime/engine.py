"""The integer-only inner evaluation loop over a :class:`CompiledEVA`.

This is Algorithm 1 again — the same capturing/reading alternation and the
same lazy-list DAG construction as the reference engine in
:mod:`repro.enumeration.evaluate` — but operating purely on ints:

* live states are slots in a flat list indexed by state id (no hashing),
* the document is translated once into symbol ids, so the reading phase is
  two list indexings per live state and character,
* marker sets are referenced by id and only materialized into DAG nodes,
* the per-document state arrays live in an :class:`EvaluationScratch` that
  batch callers reuse across documents, so steady-state evaluation
  allocates only the DAG it returns.

The produced :class:`~repro.enumeration.evaluate.ResultDag` is keyed by the
original automaton states, so enumeration, counting and the delay profiler
work on it unchanged.
"""

from __future__ import annotations

from repro.core.documents import as_text
from repro.core.errors import EvaluationError, NotDeterministicError
from repro.enumeration.dag import BOTTOM, DagNode
from repro.enumeration.evaluate import ResultDag
from repro.enumeration.lazylist import LazyList
from repro.runtime.compiled import CompiledEVA
from repro.runtime.dag import NIL, CompiledResultDag

__all__ = [
    "EvaluationScratch",
    "count_compiled",
    "evaluate_compiled",
    "evaluate_compiled_arena",
]


class EvaluationScratch:
    """Reusable per-document work buffers for the compiled engines.

    Holds the state-indexed slot arrays that the engines ping-pong between
    phases: the legacy loop keeps per-state :class:`LazyList` slots, the
    arena loop per-state ``(start, end)`` cell-index pairs.  A scratch is
    tied to the state count of the automaton it was created for; the batch
    engine keeps one per worker.
    """

    __slots__ = (
        "num_states",
        "current",
        "pending",
        "cur_start",
        "cur_end",
        "pend_start",
        "pend_end",
    )

    def __init__(self, compiled: CompiledEVA) -> None:
        self.num_states = compiled.num_states
        self.current: list[LazyList | None] = [None] * self.num_states
        self.pending: list[LazyList | None] = [None] * self.num_states
        self.cur_start = [NIL] * self.num_states
        self.cur_end = [NIL] * self.num_states
        self.pend_start = [NIL] * self.num_states
        self.pend_end = [NIL] * self.num_states


def evaluate_compiled(
    compiled: CompiledEVA,
    document: object,
    *,
    scratch: EvaluationScratch | None = None,
) -> ResultDag:
    """Run the constant-delay preprocessing on the compiled automaton.

    Equivalent to :func:`repro.enumeration.evaluate.evaluate` on
    ``compiled.source`` (the property suite asserts this), at a fraction of
    the per-character cost.  Pass a reused *scratch* when evaluating many
    documents with the same automaton.
    """
    text = as_text(document)
    n = len(text)

    if scratch is None:
        scratch = EvaluationScratch(compiled)
    elif scratch.num_states != compiled.num_states:
        raise EvaluationError(
            "the evaluation scratch was created for a different automaton "
            f"({scratch.num_states} states, expected {compiled.num_states})"
        )

    current = scratch.current
    pending = scratch.pending
    variable_table = compiled.variable_table
    letter_table = compiled.letter_table
    marker_sets = compiled.marker_sets

    initial_list = LazyList()
    initial_list.add(BOTTOM)
    initial = compiled.initial
    current[initial] = initial_list
    active = [initial]

    position = 0
    for symbol in compiled.encode_text(text):
        # Capturing phase: simulate the extended variable transitions at
        # `position`.  The snapshot is taken before any additions so that a
        # transition's source list is its pre-phase value.
        snapshot = [
            (state, current[state].lazycopy()) for state in active if variable_table[state]
        ]
        for state, old_list in snapshot:
            for set_id, target in variable_table[state]:
                node = DagNode(marker_sets[set_id], position, old_list)
                target_list = current[target]
                if target_list is None:
                    target_list = LazyList()
                    current[target] = target_list
                    active.append(target)
                target_list.add(node)

        # Reading phase: consume the character, moving every live list
        # through its (unique) letter transition.  symbol < 0 means the
        # character is outside the compiled alphabet: every run dies.
        next_active: list[int] = []
        if symbol >= 0:
            for state in active:
                old_list = current[state]
                current[state] = None
                target = letter_table[state][symbol]
                if target < 0:
                    continue
                target_list = pending[target]
                if target_list is None:
                    target_list = LazyList()
                    pending[target] = target_list
                    next_active.append(target)
                target_list.append(old_list)
        else:
            for state in active:
                current[state] = None
        current, pending = pending, current
        active = next_active
        position += 1
        if not active:
            break

    # Final capturing phase at position n (no-op if no run survived).
    snapshot = [
        (state, current[state].lazycopy()) for state in active if variable_table[state]
    ]
    for state, old_list in snapshot:
        for set_id, target in variable_table[state]:
            node = DagNode(marker_sets[set_id], position, old_list)
            target_list = current[target]
            if target_list is None:
                target_list = LazyList()
                current[target] = target_list
                active.append(target)
            target_list.add(node)

    state_objects = compiled.state_objects
    final_lists = {}
    for state in compiled.final_ids:
        lazy_list = current[state]
        if lazy_list is not None and not lazy_list.is_empty():
            final_lists[state_objects[state]] = lazy_list

    # Release the slot arrays for the next document; the lazy lists that
    # escaped into the ResultDag are unaffected.
    for state in active:
        current[state] = None
    scratch.current = current
    scratch.pending = pending

    return ResultDag(compiled.source, n, final_lists)


def evaluate_compiled_arena(
    compiled: CompiledEVA,
    document: object,
    *,
    scratch: EvaluationScratch | None = None,
) -> CompiledResultDag:
    """Algorithm 1 on the dense tables, building the node arena natively.

    The same capturing/reading alternation as :func:`evaluate_compiled`,
    but no :class:`DagNode` or :class:`LazyList` object is ever created:
    DAG nodes are rows appended to parallel int arrays and lists are
    ``(start, end)`` cell-index pairs held in the scratch's slot arrays.
    The paper's ``lazycopy`` degenerates to copying two ints, ``add``
    appends one cell, and ``append`` splices by assigning one next-pointer
    (asserting the single-assignment discipline, as the object lists do).

    Returns the flat :class:`CompiledResultDag`, on which enumeration and
    counting run integer-only (see :mod:`repro.runtime.dag`).
    """
    text = as_text(document)
    n = len(text)

    if scratch is None:
        scratch = EvaluationScratch(compiled)
    elif scratch.num_states != compiled.num_states:
        raise EvaluationError(
            "the evaluation scratch was created for a different automaton "
            f"({scratch.num_states} states, expected {compiled.num_states})"
        )

    cur_start = scratch.cur_start
    cur_end = scratch.cur_end
    pend_start = scratch.pend_start
    pend_end = scratch.pend_end
    variable_table = compiled.variable_table
    letter_table = compiled.letter_table

    node_markers: list[int] = []
    node_positions: list[int] = []
    node_starts: list[int] = []
    node_ends: list[int] = []
    cell_nodes: list[int] = [NIL]  # cell 0: the initial list [⊥]
    cell_nexts: list[int] = [NIL]

    initial = compiled.initial
    cur_start[initial] = 0
    cur_end[initial] = 0
    active = [initial]

    def capturing(position: int) -> None:
        # The (start, end) snapshot *is* the paper's lazycopy: pairs are
        # values, so the pre-phase lists are captured for free.
        snapshot = [
            (state, cur_start[state], cur_end[state])
            for state in active
            if variable_table[state]
        ]
        for state, old_start, old_end in snapshot:
            for set_id, target in variable_table[state]:
                node = len(node_markers)
                node_markers.append(set_id)
                node_positions.append(position)
                node_starts.append(old_start)
                node_ends.append(old_end)
                # add(node) on the target's list.
                cell = len(cell_nodes)
                cell_nodes.append(node)
                target_start = cur_start[target]
                cell_nexts.append(target_start)
                if target_start == NIL:
                    cur_end[target] = cell
                    active.append(target)
                cur_start[target] = cell

    position = 0
    for symbol in compiled.encode_text(text):
        capturing(position)

        # Reading phase: move every live pair through its (unique) letter
        # transition; symbol < 0 means a foreign character, every run dies.
        next_active: list[int] = []
        if symbol >= 0:
            for state in active:
                old_start = cur_start[state]
                old_end = cur_end[state]
                cur_start[state] = NIL
                target = letter_table[state][symbol]
                if target < 0:
                    continue
                target_start = pend_start[target]
                if target_start == NIL:
                    pend_start[target] = old_start
                    pend_end[target] = old_end
                    next_active.append(target)
                else:
                    # append(old_list): splice at the end of the target's
                    # pending list; the end cell's next must still be unset.
                    end_cell = pend_end[target]
                    if cell_nexts[end_cell] != NIL:
                        raise NotDeterministicError(
                            "arena append would overwrite a next pointer; the "
                            "compiled automaton is not deterministic"
                        )
                    cell_nexts[end_cell] = old_start
                    pend_end[target] = old_end
        else:
            for state in active:
                cur_start[state] = NIL
        cur_start, pend_start = pend_start, cur_start
        cur_end, pend_end = pend_end, cur_end
        active = next_active
        position += 1
        if not active:
            break

    # Final capturing phase at position n (no-op if no run survived).
    capturing(position)

    is_final = compiled.is_final
    final_entries = []
    for state in active:
        if is_final[state] and cur_start[state] != NIL:
            final_entries.append((state, cur_start[state], cur_end[state]))

    for state in active:
        cur_start[state] = NIL
    scratch.cur_start = cur_start
    scratch.cur_end = cur_end
    scratch.pend_start = pend_start
    scratch.pend_end = pend_end

    return CompiledResultDag(
        compiled,
        n,
        node_markers,
        node_positions,
        node_starts,
        node_ends,
        cell_nodes,
        cell_nexts,
        final_entries,
    )


def count_compiled(compiled: CompiledEVA, document: object) -> int:
    """Algorithm 3 (Theorem 5.1) on the dense integer tables.

    Keeps one partial-run count per state id in a flat list — the integer
    rewrite of :func:`repro.counting.count.count_mappings`.  No DAG, no
    dictionaries, ``O(|A| × |d|)`` time and ``O(|A|)`` space.
    """
    text = as_text(document)
    num_states = compiled.num_states
    variable_table = compiled.variable_table
    letter_table = compiled.letter_table

    counts = [0] * num_states
    pending = [0] * num_states
    counts[compiled.initial] = 1
    active = [compiled.initial]

    def capturing() -> None:
        snapshot = [
            (state, counts[state]) for state in active if variable_table[state]
        ]
        for state, amount in snapshot:
            for _set_id, target in variable_table[state]:
                if counts[target] == 0:
                    active.append(target)
                counts[target] += amount

    for symbol in compiled.encode_text(text):
        capturing()
        next_active: list[int] = []
        if symbol >= 0:
            for state in active:
                amount = counts[state]
                counts[state] = 0
                if not amount:
                    continue
                target = letter_table[state][symbol]
                if target < 0:
                    continue
                if pending[target] == 0:
                    next_active.append(target)
                pending[target] += amount
        else:
            for state in active:
                counts[state] = 0
        counts, pending = pending, counts
        active = next_active
        if not active:
            return 0
    capturing()

    is_final = compiled.is_final
    return sum(counts[state] for state in active if is_final[state])
