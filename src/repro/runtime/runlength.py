"""Run-length kernels: per-class transfer matrices over the RLE buffer.

The scalar engines in :mod:`repro.runtime.engine` pay one Python-level
fold per character unless *every* live state is silent (the quiescent
sprint).  Real log-like documents are long runs of a handful of symbol
classes, so this module exploits repetition *structurally*: the class-id
buffer is run-length encoded once (:meth:`EncodedDocument.runs
<repro.runtime.encoding.EncodedDocument.runs>`), and a run of ``k``
identical classes becomes **one algebraic step** instead of ``k`` folds.

Per compiled automaton and class ``c`` the kernel precomputes:

* the **count-transfer matrix** ``M_c = (I + V) · R_c`` as sparse integer
  rows — the exact per-position effect of Algorithm 3's capturing phase
  (``I + V``; silent states have empty variable rows, so applying it
  unconditionally matches the engine's quiet-skip) followed by the
  reading phase ``R_c`` (dead targets drop out),
* the **Boolean reachability row** ``B_c`` as per-state int bitmasks —
  the state-set image of one position, exactly the transition the
  shard summary pass (:func:`repro.runtime.sharding.shard_summary`)
  applies per character,
* a **class kind** used to shortcut exponentiation: ``functional``
  (every row has at most one unit entry — permutation, shift and dead
  classes alike; a run is a memoized trajectory walk with cycle
  arithmetic, ``O(1)`` per live state), ``idempotent`` (``M_c² = M_c``;
  any positive run length is one multiply) or ``general`` (binary
  exponentiation over memoized powers of two, ``O(log k)`` multiplies).

Counting runs the whole document as a product of per-run matrices
applied to the count vector (:func:`count_runlength`,
:func:`count_subset_runlength`); with numpy importable, long general
runs use exact ``int64`` matrix powers behind a conservative magnitude
guard, falling back to arbitrary-precision Python rows whenever the
guard cannot prove the product stays well inside ``int64``.  Both paths
produce identical integers — the property suite pins bit-equality.

On top of the per-run algebra sits a **content-keyed segment memo**:
byte buffers are split on a probed high-frequency delimiter class
(:meth:`EncodedDocument.segment_delimiter`), and the transfer row of
each ``(segment, entry state)`` pair is computed once and reused for
every repeated segment — on log-like documents with a few dozen
distinct line shapes this collapses the count pass to a dictionary
lookup per line.

The full-capture arena engine (:func:`evaluate_runlength_arena`) uses
the Boolean layer as a *generalized sprint*: a run prefix is skipped
wholesale exactly when the scalar engine would write **nothing** to the
arena over it — every intermediate state silent (no capture cells), no
two live runs merging (no splice), deaths allowed (they write nothing).
That strictly subsumes the all-silent self-loop condition of the scalar
sprint: live states may *move* (and die) mid-run and the jump still
applies.  Because skipped positions write nothing by construction, the
produced arena is bit-identical to the scalar engine's — the
differential harness asserts exactly that.
"""

from __future__ import annotations

from repro.core.errors import EvaluationError
from repro.runtime.compiled import CompiledEVA
from repro.runtime.dag import CompiledResultDag
from repro.runtime.encoding import runs_of_buffer
from repro.runtime.engine import (
    EvaluationScratch,
    _checked_scratch,
    _collect_arena,
    count_compiled,
    evaluate_compiled_arena,
)
from repro.runtime.kernel import KERNELS, KernelSpec, build_kernel
from repro.runtime.subset import CompiledSubsetEVA, count_subset

try:  # pragma: no cover - exercised via both CI matrix flavours
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

__all__ = [
    "KERNELS",
    "RUNLENGTH_MIN_CHARS",
    "RUNLENGTH_MIN_MEAN_RUN",
    "RunLengthKernel",
    "SubsetRunLengthKernel",
    "count_runlength",
    "count_subset_runlength",
    "count_subset_with_kernel",
    "count_vectors_runlength",
    "count_with_kernel",
    "evaluate_arena_with_kernel",
    "evaluate_runlength_arena",
    "numpy_available",
    "prefers_runlength",
    "resolve_kernel",
    "runlength_kernel",
    "subset_runlength_kernel",
    "summary_runlength",
]

# KERNELS (the planner-facing kernel axis) is defined once in
# :mod:`repro.runtime.kernel` and re-exported here for back-compat;
# ``plan.KERNEL_CHOICES`` imports the same tuple, so the two can no
# longer drift (a unit test still pins them equal).

#: ``kernel="auto"`` heuristics: below this document length the kernel
#: construction cost cannot amortize, and below this mean run length the
#: per-run dispatch overhead loses to the scalar sprint (sparse logs sit
#: near 1.4 chars/run — scalar wins; DNA-like or padded data sits far
#: above — runlength wins).
RUNLENGTH_MIN_CHARS = 1024
RUNLENGTH_MIN_MEAN_RUN = 6.0

#: numpy engages only for ``general``-kind runs at least this long —
#: shorter runs are cheaper as one or two sparse-row applications.
_NUMPY_MIN_RUN = 64
#: Conservative magnitude ceiling for the exact ``int64`` path: any
#: bound-propagation product reaching this refuses numpy for the run
#: and falls back to arbitrary-precision Python rows.
_NUMPY_SAFE = 1 << 62

#: Content-keyed segment-row memo bound (entries, FIFO eviction) and the
#: bound on memoized silent state-set trajectories.
SEGMENT_MEMO_CAP = 1 << 15
_PATH_MEMO_CAP = 1 << 12


def numpy_available() -> bool:
    """Whether the exact-int64 numpy run path can be used."""
    return _numpy is not None


# ---------------------------------------------------------------------- #
# Sparse integer row algebra (states -> sorted (target, coeff) tuples)
# ---------------------------------------------------------------------- #


def _mul_rows(a, b):
    """Row-table product: ``(a · b)[s] = Σ_t a[s][t] · b[t]``."""
    out = []
    for row in a:
        merged: dict[int, int] = {}
        for target, coeff in row:
            for final, amount in b[target]:
                merged[final] = merged.get(final, 0) + coeff * amount
        out.append(tuple(sorted(merged.items())))
    return tuple(out)


def _vec_rows(vector, rows):
    """Apply a row table to a sparse count vector (dict state -> count)."""
    out: dict[int, int] = {}
    for state, amount in vector.items():
        for target, coeff in rows[state]:
            out[target] = out.get(target, 0) + amount * coeff
    return out


class RunLengthKernel:
    """Per-class run algebra for one :class:`CompiledEVA`.

    Built once per automaton (``runlength_kernel`` caches it on the
    compiled instance; pickling drops it like every other derived
    cache) and shared by the count, summary and arena run paths.  All
    memo tables are keyed by ``(class, ...)`` and grow monotonically —
    the automaton's tables are immutable, so entries never go stale.
    """

    def __init__(self, compiled: CompiledEVA) -> None:
        self.compiled = compiled
        num_states = compiled.num_states
        class_table = compiled.class_table
        variable_table = compiled.variable_table
        silent = compiled.silent
        num_classes = len(class_table[0]) if num_states else 0
        self.num_states = num_states
        self.num_classes = num_classes

        # (I + V) rows: the capturing phase as a sparse matrix.  Silent
        # states have empty variable rows, so their row is the identity.
        iv_rows = []
        for state in range(num_states):
            row = {state: 1}
            for _set_id, target in variable_table[state]:
                row[target] = row.get(target, 0) + 1
            iv_rows.append(tuple(sorted(row.items())))
        self.iv_rows = tuple(iv_rows)

        step_rows = []
        bool_rows = []
        selfloop_silent = []
        count_kind = []
        for cls in range(num_classes):
            rows = []
            masks = []
            loop_mask = 0
            functional = True
            for state in range(num_states):
                merged: dict[int, int] = {}
                mask = 0
                for source, coeff in iv_rows[state]:
                    target = class_table[source][cls]
                    if target < 0:
                        continue
                    merged[target] = merged.get(target, 0) + coeff
                    mask |= 1 << target
                row = tuple(sorted(merged.items()))
                rows.append(row)
                masks.append(mask)
                if len(row) > 1 or (row and row[0][1] != 1):
                    functional = False
                if silent[state] and class_table[state][cls] == state:
                    loop_mask |= 1 << state
            rows = tuple(rows)
            if functional:
                kind = "functional"
            elif _mul_rows(rows, rows) == rows:
                kind = "idempotent"
            else:
                kind = "general"
            step_rows.append(rows)
            bool_rows.append(tuple(masks))
            selfloop_silent.append(loop_mask)
            count_kind.append(kind)
        #: per class: ``M_c`` as sparse rows / ``B_c`` as bitmask rows /
        #: the silent-self-loop mask / the exponentiation shortcut kind.
        self.step_rows = tuple(step_rows)
        self.bool_rows = tuple(bool_rows)
        self.selfloop_silent = tuple(selfloop_silent)
        self.count_kind = tuple(count_kind)

        self._count_powers: dict[tuple[int, int], tuple] = {}
        self._bool_powers: dict[tuple[int, int], tuple] = {}
        self._count_paths: dict[tuple[int, int], tuple] = {}
        self._sprint_paths: dict[tuple[int, int], tuple] = {}
        self._mask_paths: dict[tuple[int, int], tuple] = {}
        self._np_powers: dict[tuple[int, int], tuple] = {}
        self._segment_rows: dict[tuple[bytes, int], tuple] = {}

    # ------------------------------------------------------------------ #
    # Count algebra: M_c^k applied to a sparse count vector
    # ------------------------------------------------------------------ #

    def count_power(self, cls: int, bit: int):
        """``M_cls`` to the power ``2**bit`` as sparse rows (memoized)."""
        key = (cls, bit)
        rows = self._count_powers.get(key)
        if rows is None:
            if bit == 0:
                rows = self.step_rows[cls]
            else:
                half = self.count_power(cls, bit - 1)
                rows = _mul_rows(half, half)
            self._count_powers[key] = rows
        return rows

    def _count_path(self, cls: int, state: int):
        """Trajectory of a basis vector under a functional class.

        Returns ``(seq, cycle)``: ``seq[i]`` is the state after ``i``
        positions, ``cycle`` the index the trajectory re-enters (``None``
        when it dies instead).
        """
        key = (cls, state)
        cached = self._count_paths.get(key)
        if cached is None:
            rows = self.step_rows[cls]
            seq = [state]
            index = {state: 0}
            cur = state
            cycle = None
            while True:
                row = rows[cur]
                if not row:
                    break
                cur = row[0][0]
                if cur in index:
                    cycle = index[cur]
                    break
                index[cur] = len(seq)
                seq.append(cur)
            cached = (tuple(seq), cycle)
            self._count_paths[key] = cached
        return cached

    def _functional_target(self, cls: int, state: int, k: int):
        """``M_cls^k · e_state`` for a functional class: one state or None."""
        seq, cycle = self._count_path(cls, state)
        if k < len(seq):
            return seq[k]
        if cycle is None:
            return None
        span = len(seq) - cycle
        return seq[cycle + (k - cycle) % span]

    def vec_run(self, vector, cls: int, k: int, use_numpy=None):
        """Apply ``M_cls^k`` to a sparse count vector exactly.

        ``use_numpy``: ``None`` engages the int64 path automatically for
        long general runs, ``False`` never does; either way the result
        is the exact integer vector.
        """
        if k <= 0 or not vector:
            return dict(vector)
        kind = self.count_kind[cls]
        if kind == "functional":
            out: dict[int, int] = {}
            for state, amount in vector.items():
                target = self._functional_target(cls, state, k)
                if target is not None:
                    out[target] = out.get(target, 0) + amount
            return out
        if kind == "idempotent":
            return _vec_rows(vector, self.step_rows[cls])
        if _numpy is not None and use_numpy is not False and k >= _NUMPY_MIN_RUN:
            out = self._vec_run_numpy(vector, cls, k)
            if out is not None:
                return out
        out = dict(vector)
        bit = 0
        while k:
            if k & 1:
                out = _vec_rows(out, self.count_power(cls, bit))
                if not out:
                    return out
            k >>= 1
            bit += 1
        return out

    def _np_power(self, cls: int, bit: int):
        """``(matrix, peak)`` for ``M_cls^(2**bit)`` in int64, or
        ``(None, 0)`` once the squaring chain can no longer be proven
        overflow-free."""
        key = (cls, bit)
        cached = self._np_powers.get(key)
        if cached is None:
            if bit == 0:
                n = self.num_states
                mat = _numpy.zeros((n, n), dtype=_numpy.int64)
                for state, row in enumerate(self.step_rows[cls]):
                    for target, coeff in row:
                        mat[state, target] = coeff
            else:
                prev, peak_prev = self._np_power(cls, bit - 1)
                if (
                    prev is None
                    or peak_prev * peak_prev * max(self.num_states, 1)
                    >= _NUMPY_SAFE
                ):
                    cached = (None, 0)
                    self._np_powers[key] = cached
                    return cached
                mat = prev @ prev
            peak = int(mat.max()) if mat.size else 0
            cached = (mat, peak)
            self._np_powers[key] = cached
        return cached

    def _vec_run_numpy(self, vector, cls: int, k: int):
        """The int64 run product, or ``None`` when the conservative
        magnitude bound cannot clear the whole run (caller falls back to
        exact Python rows)."""
        n = self.num_states
        bound = sum(vector.values())
        if bound >= _NUMPY_SAFE:
            return None
        mats = []
        bit = 0
        while k:
            if k & 1:
                mat, peak = self._np_power(cls, bit)
                if mat is None:
                    return None
                bound *= max(peak, 1) * max(n, 1)
                if bound >= _NUMPY_SAFE:
                    return None
                mats.append(mat)
            k >>= 1
            bit += 1
        vec = _numpy.zeros(n, dtype=_numpy.int64)
        for state, amount in vector.items():
            vec[state] = amount
        for mat in mats:
            vec = vec @ mat
        return {
            state: amount
            for state, amount in enumerate(vec.tolist())
            if amount
        }

    # ------------------------------------------------------------------ #
    # Content-keyed segment rows (the log-line memo)
    # ------------------------------------------------------------------ #

    def segment_row(self, segment: bytes, state: int, use_numpy=None):
        """The transfer row of one delimiter-free segment from *state*.

        Keyed by the segment *bytes* — repeated log-line shapes share one
        computation.  FIFO-evicted at :data:`SEGMENT_MEMO_CAP` entries.
        """
        key = (segment, state)
        row = self._segment_rows.get(key)
        if row is None:
            vector = {state: 1}
            for cls, length in runs_of_buffer(segment):
                if not vector:
                    break
                vector = self.vec_run(vector, cls, length, use_numpy)
            row = tuple(sorted(vector.items()))
            if len(self._segment_rows) >= SEGMENT_MEMO_CAP:
                self._segment_rows.pop(next(iter(self._segment_rows)))
            self._segment_rows[key] = row
        return row

    def count_vector_segmented(self, buf: bytes, delimiter: int, vector,
                               use_numpy=None):
        """The count vector after *buf*, split on one delimiter class.

        ``bytes.split`` is a single C-level pass; every segment between
        delimiters goes through :meth:`segment_row`, every delimiter is
        one sparse-row application.  Exactly equal to folding the runs.
        """
        segments = buf.split(bytes((delimiter,)))
        delim_rows = self.step_rows[delimiter]
        last = len(segments) - 1
        for index, segment in enumerate(segments):
            if not vector:
                return vector
            if segment:
                if len(vector) == 1:
                    ((state, amount),) = vector.items()
                    row = self.segment_row(segment, state, use_numpy)
                    vector = {t: amount * c for t, c in row}
                else:
                    out: dict[int, int] = {}
                    for state, amount in vector.items():
                        row = self.segment_row(segment, state, use_numpy)
                        for target, coeff in row:
                            out[target] = out.get(target, 0) + amount * coeff
                    vector = out
            if index != last and vector:
                vector = _vec_rows(vector, delim_rows)
        return vector

    def count_vector_runs(self, runs, vector, use_numpy=None):
        """Fold a run list through the per-run count algebra."""
        for cls, length in runs:
            if not vector:
                break
            vector = self.vec_run(vector, cls, length, use_numpy)
        return vector

    # ------------------------------------------------------------------ #
    # Boolean reachability: the summary-pass algebra
    # ------------------------------------------------------------------ #

    def bool_power(self, cls: int, bit: int):
        """``B_cls`` to the power ``2**bit`` as bitmask rows (memoized)."""
        key = (cls, bit)
        masks = self._bool_powers.get(key)
        if masks is None:
            if bit == 0:
                masks = self.bool_rows[cls]
            else:
                half = self.bool_power(cls, bit - 1)
                composed = []
                for mask in half:
                    image = 0
                    while mask:
                        low = mask & -mask
                        image |= half[low.bit_length() - 1]
                        mask &= mask - 1
                    composed.append(image)
                masks = tuple(composed)
            self._bool_powers[key] = masks
        return masks

    def frontier_run(self, mask: int, cls: int, k: int) -> int:
        """Push a state-set bitmask through a run of length ``k`` —
        ``O(log k)`` Boolean row applications instead of ``k`` steps."""
        bit = 0
        while k and mask:
            if k & 1:
                rows = self.bool_power(cls, bit)
                image = 0
                m = mask
                while m:
                    low = m & -m
                    image |= rows[low.bit_length() - 1]
                    m &= m - 1
                mask = image
            k >>= 1
            bit += 1
        return mask

    # ------------------------------------------------------------------ #
    # Generalized-sprint trajectories (the arena jump machinery)
    # ------------------------------------------------------------------ #

    def sprint_path(self, cls: int, state: int):
        """The pure-reading trajectory of one silent state under *cls*.

        ``(kind, seq, cycle)`` with ``seq[i]`` the state after ``i``
        positions: ``"cycle"`` — all silent, re-enters ``seq[cycle]``;
        ``"dies"`` — all silent, the ``len(seq)``-th position kills it;
        ``"exits"`` — ``seq[-1]`` is the first non-silent state, reached
        after ``len(seq) - 1`` positions.
        """
        key = (cls, state)
        cached = self._sprint_paths.get(key)
        if cached is None:
            class_table = self.compiled.class_table
            silent = self.compiled.silent
            seq = [state]
            index = {state: 0}
            cur = state
            while True:
                target = class_table[cur][cls]
                if target < 0:
                    cached = ("dies", tuple(seq), 0)
                    break
                if not silent[target]:
                    seq.append(target)
                    cached = ("exits", tuple(seq), 0)
                    break
                if target in index:
                    cached = ("cycle", tuple(seq), index[target])
                    break
                index[target] = len(seq)
                seq.append(target)
                cur = target
            self._sprint_paths[key] = cached
        return cached

    def silent_target(self, cls: int, state: int, k: int):
        """Where a silent *state* sits after ``k`` all-silent positions
        (``None`` if it died on the way).  Callers guarantee ``k`` stays
        inside the silent prefix of the trajectory."""
        kind, seq, cycle = self.sprint_path(cls, state)
        if k < len(seq):
            return seq[k]
        if kind == "cycle":
            span = len(seq) - cycle
            return seq[cycle + (k - cycle) % span]
        if kind == "dies":
            return None
        raise EvaluationError(
            "run-length jump walked past a non-silent exit; the silent "
            "prefix accounting is inconsistent"
        )

    def _mask_step(self, cls: int, mask: int):
        """One reading step on a silent state-set mask.

        ``(image, free)`` — *free* is True when the position provably
        writes nothing to an arena: no two live runs merge (no splice)
        and every surviving target is silent (no capture next).  Deaths
        write nothing and keep the step free.
        """
        class_table = self.compiled.class_table
        silent = self.compiled.silent
        image = 0
        m = mask
        while m:
            low = m & -m
            state = low.bit_length() - 1
            m &= m - 1
            target = class_table[state][cls]
            if target < 0:
                continue
            bit = 1 << target
            if (image & bit) or not silent[target]:
                return image, False
            image |= bit
        return image, True

    def mask_path(self, cls: int, mask: int):
        """``(seq, cycle)`` of free steps for a silent state-set mask:
        ``seq[i]`` is the mask after ``i`` free positions; ``cycle`` is
        the re-entry index (unbounded free steps) or ``None`` when the
        next position is not free."""
        key = (cls, mask)
        cached = self._mask_paths.get(key)
        if cached is None:
            seq = [mask]
            index = {mask: 0}
            cur = mask
            cycle = None
            while True:
                image, free = self._mask_step(cls, cur)
                if not free:
                    break
                if image in index:
                    cycle = index[image]
                    break
                index[image] = len(seq)
                seq.append(image)
                cur = image
            cached = (tuple(seq), cycle)
            if len(self._mask_paths) < _PATH_MEMO_CAP:
                self._mask_paths[key] = cached
        return cached


def runlength_kernel(compiled: CompiledEVA) -> RunLengthKernel:
    """The (cached) run-length kernel of a compiled automaton."""
    kernel = compiled._runlength
    if kernel is None:
        kernel = RunLengthKernel(compiled)
        compiled._runlength = kernel
    return kernel


# ---------------------------------------------------------------------- #
# Counting: Algorithm 3 as a product of per-run matrices
# ---------------------------------------------------------------------- #


def count_runlength(
    compiled: CompiledEVA,
    document: object,
    *,
    use_numpy=None,
) -> int:
    """Algorithm 3 as a run product — exactly :func:`count_compiled`.

    The count vector is pushed through one matrix power per run (with
    the segment memo collapsing repeated delimiter-bounded stretches to
    lookups), then the trailing capturing phase ``I + V`` is applied and
    final-state counts summed.  ``use_numpy=True`` requires numpy,
    ``False`` forbids it, ``None`` (default) decides per run.
    """
    if use_numpy and _numpy is None:
        raise EvaluationError(
            "use_numpy=True was requested but numpy is not importable"
        )
    encoded = compiled.encode(document)
    kernel = runlength_kernel(compiled)
    vector = {compiled.initial: 1}
    buf = encoded.buffer
    delimiter = (
        encoded.segment_delimiter() if isinstance(buf, bytes) else None
    )
    if delimiter is not None:
        vector = kernel.count_vector_segmented(
            buf, delimiter, vector, use_numpy
        )
    else:
        vector = kernel.count_vector_runs(encoded.runs(), vector, use_numpy)

    is_final = compiled.is_final
    iv_rows = kernel.iv_rows
    total = 0
    for state, amount in vector.items():
        for target, coeff in iv_rows[state]:
            if is_final[target]:
                total += amount * coeff
    return total


# ---------------------------------------------------------------------- #
# Full-capture arena evaluation with the generalized sprint
# ---------------------------------------------------------------------- #

_runlength_arena_kernel = build_kernel(
    KernelSpec(capture="arena", kernel="runlength")
)


def evaluate_runlength_arena(
    compiled: CompiledEVA,
    document: object,
    *,
    scratch: EvaluationScratch | None = None,
    fast_path: bool = True,
) -> CompiledResultDag:
    """Algorithm 1 over the RLE buffer — bit-identical to
    :func:`~repro.runtime.engine.evaluate_compiled_arena`.

    Scalar positions run exactly the engine's capturing/reading code
    (same snapshot order, same splice discipline, same sorted-active
    canonical order).  When every live state is silent, whole run
    prefixes are jumped via memoized trajectories: a lone run follows
    :meth:`RunLengthKernel.sprint_path` (state changes and death inside
    a run cost ``O(1)``), several runs jump together as long as
    :meth:`RunLengthKernel.mask_path` proves no merge and no non-silent
    landing.  Jumped positions write nothing by construction, so the
    arena arrays cannot differ from the scalar engine's.
    """
    encoded = compiled.encode(document)
    n = encoded.length
    runs = encoded.runs()
    kernel = runlength_kernel(compiled)
    scratch = _checked_scratch(compiled, scratch)
    result = _runlength_arena_kernel(compiled, kernel, runs, n, scratch, fast_path)
    return _collect_arena(compiled, n, scratch, result)


# ---------------------------------------------------------------------- #
# Sharding composition: per-shard summaries / vectors over runs
# ---------------------------------------------------------------------- #


def summary_runlength(
    compiled: CompiledEVA,
    buf,
    n: int | None = None,
    *,
    entry_states=None,
):
    """The shard transition summary via Boolean run powers.

    Same shape as :func:`repro.runtime.sharding.shard_summary` — entry
    state to sorted exit tuple, dead entries empty — but each run costs
    ``O(log k)`` Boolean row applications instead of ``k`` characters.
    No trailing capture: boundary work belongs to the successor shard.
    """
    kernel = runlength_kernel(compiled)
    if entry_states is None:
        entry_states = range(compiled.num_states)
    if n is not None:
        buf = buf[:n]
    runs = runs_of_buffer(buf)
    summary = {}
    for entry in entry_states:
        mask = 1 << entry
        for cls, length in runs:
            if not mask:
                break
            mask = kernel.frontier_run(mask, cls, length)
        exits = []
        while mask:
            low = mask & -mask
            exits.append(low.bit_length() - 1)
            mask &= mask - 1
        summary[entry] = tuple(exits)
    return summary


def count_vectors_runlength(
    compiled: CompiledEVA,
    buf,
    entries,
    include_final: bool,
):
    """Per-entry exit count vectors of one shard via the run algebra.

    Same contract as the scalar ``_count_run`` task: each entry state
    seeds a unit count; *include_final* applies the trailing capturing
    phase (``I + V``) on the last shard only.
    """
    kernel = runlength_kernel(compiled)
    runs = runs_of_buffer(buf)
    iv_rows = kernel.iv_rows
    vectors = {}
    for entry in entries:
        vector = kernel.count_vector_runs(runs, {entry: 1})
        if include_final and vector:
            out: dict[int, int] = {}
            for state, amount in vector.items():
                for target, coeff in iv_rows[state]:
                    out[target] = out.get(target, 0) + amount * coeff
            vector = out
        vectors[entry] = vector
    return vectors


# ---------------------------------------------------------------------- #
# The lazily determinized (subset) count path
# ---------------------------------------------------------------------- #


class SubsetRunLengthKernel:
    """Run algebra over a :class:`CompiledSubsetEVA`'s discovered rows.

    The subset state space is open-ended (rows are interned on first
    use), so everything is lazy: step rows, powers-of-two and segment
    rows are computed per reached subset id and memoized.  No class-kind
    shortcuts and no numpy — subset counting is the determinize-on-the-
    fly fallback, not the hot path.
    """

    def __init__(self, subset_eva: CompiledSubsetEVA) -> None:
        self.subset_eva = subset_eva
        self._iv_rows: dict[int, tuple] = {}
        self._power_rows: dict[tuple[int, int], dict[int, tuple]] = {}
        self._segment_rows: dict[tuple[bytes, int], tuple] = {}

    def iv_row(self, subset_id: int):
        """The capturing phase ``(I + V)`` row of one subset state."""
        row = self._iv_rows.get(subset_id)
        if row is None:
            merged = {subset_id: 1}
            for _set_id, target in self.subset_eva.variable_row(subset_id):
                merged[target] = merged.get(target, 0) + 1
            row = tuple(sorted(merged.items()))
            self._iv_rows[subset_id] = row
        return row

    def power_row(self, cls: int, bit: int, subset_id: int):
        """The row of ``M_cls^(2**bit)`` at *subset_id*, built lazily."""
        rows = self._power_rows.setdefault((cls, bit), {})
        row = rows.get(subset_id)
        if row is None:
            if bit == 0:
                letter_successor = self.subset_eva.letter_successor
                merged: dict[int, int] = {}
                for source, coeff in self.iv_row(subset_id):
                    target = letter_successor(source, cls)
                    if target < 0:
                        continue
                    merged[target] = merged.get(target, 0) + coeff
                row = tuple(sorted(merged.items()))
            else:
                merged = {}
                for mid, coeff in self.power_row(cls, bit - 1, subset_id):
                    for target, amount in self.power_row(cls, bit - 1, mid):
                        merged[target] = (
                            merged.get(target, 0) + coeff * amount
                        )
                row = tuple(sorted(merged.items()))
            rows[subset_id] = row
        return row

    def vec_run(self, vector, cls: int, k: int):
        """Apply ``M_cls^k`` by binary exponentiation over lazy rows."""
        if k <= 0 or not vector:
            return dict(vector)
        out = dict(vector)
        bit = 0
        while k and out:
            if k & 1:
                merged: dict[int, int] = {}
                for subset_id, amount in out.items():
                    for target, coeff in self.power_row(cls, bit, subset_id):
                        merged[target] = (
                            merged.get(target, 0) + amount * coeff
                        )
                out = merged
            k >>= 1
            bit += 1
        return out

    def segment_row(self, segment: bytes, subset_id: int):
        """Content-keyed transfer row, as in the dense kernel."""
        key = (segment, subset_id)
        row = self._segment_rows.get(key)
        if row is None:
            vector = {subset_id: 1}
            for cls, length in runs_of_buffer(segment):
                if not vector:
                    break
                vector = self.vec_run(vector, cls, length)
            row = tuple(sorted(vector.items()))
            if len(self._segment_rows) >= SEGMENT_MEMO_CAP:
                self._segment_rows.pop(next(iter(self._segment_rows)))
            self._segment_rows[key] = row
        return row


def subset_runlength_kernel(
    subset_eva: CompiledSubsetEVA,
) -> SubsetRunLengthKernel:
    """The (cached) run-length kernel of a subset automaton."""
    kernel = getattr(subset_eva, "_runlength", None)
    if kernel is None:
        kernel = SubsetRunLengthKernel(subset_eva)
        subset_eva._runlength = kernel
    return kernel


def count_subset_runlength(
    subset_eva: CompiledSubsetEVA,
    document: object,
) -> int:
    """:func:`~repro.runtime.subset.count_subset` as a run product."""
    encoded = subset_eva.encode(document)
    kernel = subset_runlength_kernel(subset_eva)
    vector = {subset_eva.initial: 1}
    buf = encoded.buffer
    delimiter = (
        encoded.segment_delimiter() if isinstance(buf, bytes) else None
    )
    if delimiter is not None:
        segments = buf.split(bytes((delimiter,)))
        last = len(segments) - 1
        for index, segment in enumerate(segments):
            if not vector:
                break
            if segment:
                out: dict[int, int] = {}
                for subset_id, amount in vector.items():
                    for target, coeff in kernel.segment_row(
                        segment, subset_id
                    ):
                        out[target] = out.get(target, 0) + amount * coeff
                vector = out
            if index != last and vector:
                vector = kernel.vec_run(vector, delimiter, 1)
    else:
        for cls, length in encoded.runs():
            if not vector:
                break
            vector = kernel.vec_run(vector, cls, length)

    is_final = subset_eva.subset_is_final
    total = 0
    for subset_id, amount in vector.items():
        for target, coeff in kernel.iv_row(subset_id):
            if is_final[target]:
                total += amount * coeff
    return total


# ---------------------------------------------------------------------- #
# Kernel dispatch (the plan's kernel axis lands here)
# ---------------------------------------------------------------------- #


def prefers_runlength(encoded) -> bool:
    """The ``kernel="auto"`` heuristic on one encoded document.

    Run-length kernels win when runs are long enough to amortize the
    per-run dispatch; on near-unit mean run lengths the scalar sprint
    is faster and auto stays with it.
    """
    return (
        encoded.length >= RUNLENGTH_MIN_CHARS
        and encoded.mean_run_length() >= RUNLENGTH_MIN_MEAN_RUN
    )


def resolve_kernel(kernel: str, encoded) -> str:
    """Resolve the plan-level kernel choice against one document."""
    if kernel == "auto":
        return "runlength" if prefers_runlength(encoded) else "scalar"
    if kernel not in ("scalar", "runlength"):
        raise EvaluationError(
            f"unknown kernel {kernel!r}; expected one of {KERNELS}"
        )
    return kernel


def count_with_kernel(
    compiled: CompiledEVA,
    document: object,
    *,
    kernel: str = "auto",
    scratch: EvaluationScratch | None = None,
    fast_path: bool = True,
) -> int:
    """:func:`count_compiled` or :func:`count_runlength` by plan axis."""
    if kernel == "scalar":
        return count_compiled(
            compiled, document, scratch=scratch, fast_path=fast_path
        )
    resolved = resolve_kernel(kernel, compiled.encode(document))
    if resolved == "runlength":
        return count_runlength(compiled, document)
    return count_compiled(
        compiled, document, scratch=scratch, fast_path=fast_path
    )


def evaluate_arena_with_kernel(
    compiled: CompiledEVA,
    document: object,
    *,
    kernel: str = "auto",
    scratch: EvaluationScratch | None = None,
    fast_path: bool = True,
) -> CompiledResultDag:
    """The arena engine under the plan's kernel axis (bit-identical)."""
    if kernel == "scalar":
        return evaluate_compiled_arena(
            compiled, document, scratch=scratch, fast_path=fast_path
        )
    resolved = resolve_kernel(kernel, compiled.encode(document))
    if resolved == "runlength":
        return evaluate_runlength_arena(
            compiled, document, scratch=scratch, fast_path=fast_path
        )
    return evaluate_compiled_arena(
        compiled, document, scratch=scratch, fast_path=fast_path
    )


def count_subset_with_kernel(
    subset_eva: CompiledSubsetEVA,
    document: object,
    *,
    kernel: str = "auto",
    fast_path: bool = True,
) -> int:
    """:func:`count_subset` under the plan's kernel axis."""
    if kernel == "scalar":
        return count_subset(subset_eva, document, fast_path=fast_path)
    resolved = resolve_kernel(kernel, subset_eva.encode(document))
    if resolved == "runlength":
        return count_subset_runlength(subset_eva, document)
    return count_subset(subset_eva, document, fast_path=fast_path)
