"""On-the-fly subset construction in the compiled runtime.

The paper's Section 4 closes by noting that its translations "can be fed to
Algorithm 1 on-the-fly, thus rarely needing to materialize the entire
deterministic seVA".  The reference implementation of that remark
(:mod:`repro.enumeration.onthefly`) hashes ``frozenset`` subsets of
original states on every phase of every document.  This module is its
compiled counterpart:

* the *possibly non-deterministic* sequential eVA is interned once into
  dense integer tables (states, symbols and marker sets get contiguous
  ids); alphabet symbols with identical letter behaviour across **all**
  base states collapse into one equivalence class, and documents are
  translated into cached class-id buffers exactly like the dense runtime
  (:mod:`repro.runtime.encoding` — one C-level pass per document and
  classing signature, shared with any other engine of the same signature);
* reachable subset-states are interned to integers **on demand** — a
  subset is hashed exactly once, when first discovered, and from then on
  it is just an int;
* discovered subset rows (variable successors and per-class letter
  successors) are cached on the :class:`CompiledSubsetEVA` itself, so they
  are reused across positions *and across every document* evaluated with
  the same instance — the batch engine evaluates a whole collection
  without ever re-deriving a row, and without the up-front (potentially
  exponential) :func:`~repro.automata.transforms.determinize` call.

:func:`evaluate_subset_arena` runs the same arena-building Algorithm 1 loop
as :func:`repro.runtime.engine.evaluate_compiled_arena` over the lazily
determinized automaton — including the quiescent-run fast path: a subset
whose members all lack variable transitions is *silent*, capturing phases
are skipped while every live subset is silent, and a lone silent subset
sprints through byte buffers via a per-subset compiled stop pattern.
:func:`count_subset` is the matching integer Algorithm 3.  Both keep
per-subset slots in dictionaries keyed by subset id, because the state
space grows while evaluating.
"""

from __future__ import annotations

import re

from repro.core.errors import CompilationError
from repro.automata.eva import ExtendedVA
from repro.automata.markers import MarkerSet
from repro.runtime.compiled import (
    NO_TARGET,
    classify_columns,
    encode_symbols,
    marker_decode_tables_for,
    store_stop_pattern,
)
from repro.runtime.dag import CompiledResultDag
from repro.runtime.encoding import SymbolClassing
from repro.runtime.kernel import KernelSpec, build_kernel, subset_sprint

__all__ = ["CompiledSubsetEVA", "count_subset", "evaluate_subset_arena"]

#: Sentinel in a lazily filled letter row: "successor not discovered yet".
UNKNOWN = -2


class CompiledSubsetEVA:
    """A lazily determinized, integer-indexed view of a sequential eVA.

    The instance is **stateful**: its subset tables grow monotonically as
    documents are evaluated, which is exactly the point — discovery work is
    paid once per reachable subset, not once per document.  The base
    automaton's interning (states, symbols, marker sets, symbol classes)
    happens eagerly in the constructor and is deterministic, so marker-set
    ids are stable across processes; subset ids are *not* (each process
    discovers subsets in its own order), which is why portable results key
    final states by the subset's member tuple (see
    :meth:`portable_state_key`).
    """

    def __init__(self, automaton: ExtendedVA) -> None:
        if not automaton.has_initial:
            raise CompilationError("cannot compile an automaton without an initial state")
        self.source = automaton

        # --- eager interning of the (non-deterministic) base automaton --- #
        base_initial = automaton.initial
        base_states = (base_initial, *sorted(
            (s for s in automaton.states if s != base_initial), key=repr
        ))
        self.base_state_objects: tuple = base_states
        base_index = {state: i for i, state in enumerate(base_states)}
        self.symbols: tuple[str, ...] = tuple(sorted(automaton.alphabet()))
        self.symbol_index = {symbol: i for i, symbol in enumerate(self.symbols)}

        marker_sets: list[MarkerSet] = []
        marker_set_index: dict[MarkerSet, int] = {}
        base_variable: list[tuple[tuple[int, int], ...]] = []
        base_letter: list[tuple[tuple[int, ...], ...]] = []
        for state in base_states:
            pairs: list[tuple[int, int]] = []
            for marker_set, target in sorted(
                automaton.variable_transitions_from(state), key=lambda pair: repr(pair)
            ):
                set_id = marker_set_index.get(marker_set)
                if set_id is None:
                    set_id = len(marker_sets)
                    marker_set_index[marker_set] = set_id
                    marker_sets.append(marker_set)
                pairs.append((set_id, base_index[target]))
            base_variable.append(tuple(pairs))
            row: list[list[int]] = [[] for _ in self.symbols]
            for symbol, target in automaton.letter_transitions_from(state):
                row[self.symbol_index[symbol]].append(base_index[target])
            base_letter.append(tuple(tuple(sorted(targets)) for targets in row))
        self.marker_sets: tuple[MarkerSet, ...] = tuple(marker_sets)
        self.marker_set_index = marker_set_index
        self.base_variable = tuple(base_variable)
        self.base_letter = tuple(base_letter)
        self.base_finals = frozenset(base_index[s] for s in automaton.finals)

        # --- symbol equivalence classes over the base letter columns --- #
        # Two symbols share a class iff every base state maps them to the
        # same target set; one trailing empty foreign column absorbs
        # out-of-alphabet characters.
        columns = (
            tuple(zip(*self.base_letter)) if self.base_letter and self.symbols else ()
        )
        class_of, representatives = classify_columns(columns)
        self.classing = SymbolClassing(self.symbols, class_of)
        if representatives:
            self.base_letter_by_class = tuple(
                row + ((),) for row in zip(*representatives)
            )
        else:
            self.base_letter_by_class = tuple(((),) for _ in base_states)
        #: states without any extended variable transition, by base id
        self._base_silent = tuple(not row for row in self.base_variable)

        # --- lazily grown subset tables --- #
        #: member tuple (sorted base ids) per subset id
        self.subset_members: list[tuple[int, ...]] = []
        self._subset_index: dict[tuple[int, ...], int] = {}
        #: per-subset (marker_set_id, target_subset_id) rows, None = unknown
        self.subset_variable: list[tuple[tuple[int, int], ...] | None] = []
        #: per-subset per-class successor, UNKNOWN until discovered
        self.subset_letter: list[list[int]] = []
        self.subset_is_final: list[bool] = []
        #: per-subset "all members silent" flag (quiescent fast path)
        self.subset_silent: list[bool] = []
        #: frozensets of base state objects, for ResultDag conversion
        self._state_objects: list[frozenset] = []
        self._marker_decode: tuple[tuple, tuple] | None = None
        self._sprint_patterns: dict[int, re.Pattern] = {}

        self.initial = self.intern_subset((0,))

    # ------------------------------------------------------------------ #
    # Subset interning and lazy row discovery
    # ------------------------------------------------------------------ #

    def intern_subset(self, members: tuple[int, ...]) -> int:
        """The id of the subset-state *members* (a sorted tuple of base ids)."""
        subset_id = self._subset_index.get(members)
        if subset_id is None:
            subset_id = len(self.subset_members)
            self._subset_index[members] = subset_id
            self.subset_members.append(members)
            self.subset_variable.append(None)
            self.subset_letter.append([UNKNOWN] * self.classing.num_ids)
            self.subset_is_final.append(
                any(state in self.base_finals for state in members)
            )
            base_silent = self._base_silent
            self.subset_silent.append(all(base_silent[state] for state in members))
            self._state_objects.append(
                frozenset(self.base_state_objects[state] for state in members)
            )
        return subset_id

    def variable_row(self, subset_id: int) -> tuple[tuple[int, int], ...]:
        """The subset-automaton variable transitions from *subset_id*.

        Discovered on first use: targets of the member states are grouped
        by marker-set id, each group's union interned as a subset.
        """
        row = self.subset_variable[subset_id]
        if row is None:
            grouped: dict[int, set[int]] = {}
            base_variable = self.base_variable
            for state in self.subset_members[subset_id]:
                for set_id, target in base_variable[state]:
                    grouped.setdefault(set_id, set()).add(target)
            row = tuple(
                (set_id, self.intern_subset(tuple(sorted(targets))))
                for set_id, targets in sorted(grouped.items())
            )
            self.subset_variable[subset_id] = row
        return row

    def letter_successor(self, subset_id: int, symbol_class: int) -> int:
        """``δ(subset, class)`` — ``NO_TARGET`` if every member run dies.

        *symbol_class* is an equivalence-class id of :attr:`classing` (the
        foreign class yields ``NO_TARGET``: its base columns are empty).
        """
        row = self.subset_letter[subset_id]
        successor = row[symbol_class]
        if successor == UNKNOWN:
            targets: set[int] = set()
            base_letter = self.base_letter_by_class
            for state in self.subset_members[subset_id]:
                targets.update(base_letter[state][symbol_class])
            successor = (
                self.intern_subset(tuple(sorted(targets))) if targets else NO_TARGET
            )
            row[symbol_class] = successor
        return successor

    def sprint_pattern(self, subset_id: int) -> re.Pattern:
        """A compiled byte-pattern matching every class id leaving *subset_id*.

        Forces discovery of the subset's full letter row on first use, then
        caches the pattern; rows are immutable once discovered, so the
        pattern stays valid for the instance's lifetime.  Only meaningful
        for byte buffers (classings with at most 256 ids).
        """
        pattern = self._sprint_patterns.get(subset_id)
        if pattern is None:
            # The foreign class never self-loops, so the stop set is
            # non-empty.
            pattern = store_stop_pattern(
                self._sprint_patterns,
                subset_id,
                (
                    class_id
                    for class_id in range(self.classing.num_ids)
                    if self.letter_successor(subset_id, class_id) != subset_id
                ),
            )
        return pattern

    def sprint_pattern_multi(self, subset_ids: tuple[int, ...]) -> re.Pattern:
        """The union stop pattern of several live subsets (sorted tuple key).

        Matches every class id on which at least one of *subset_ids* does
        not self-loop — see :meth:`CompiledEVA.sprint_pattern_multi` for
        how the engines use it to skip multi-run quiescent stretches.
        """
        pattern = self._sprint_patterns.get(subset_ids)
        if pattern is None:
            letter_successor = self.letter_successor
            pattern = store_stop_pattern(
                self._sprint_patterns,
                subset_ids,
                (
                    class_id
                    for subset_id in subset_ids
                    for class_id in range(self.classing.num_ids)
                    if letter_successor(subset_id, class_id) != subset_id
                ),
            )
        return pattern

    # ------------------------------------------------------------------ #
    # Introspection and the CompiledResultDag provider protocol
    # ------------------------------------------------------------------ #

    @property
    def num_base_states(self) -> int:
        """The number of states of the underlying non-deterministic eVA."""
        return len(self.base_state_objects)

    @property
    def num_subset_states(self) -> int:
        """The number of subset-states discovered so far."""
        return len(self.subset_members)

    @property
    def num_classes(self) -> int:
        """Distinct symbol equivalence classes (excluding the foreign class)."""
        return self.classing.num_classes

    @property
    def state_objects(self) -> list[frozenset]:
        """Subset-state objects (frozensets of base states), by subset id."""
        return self._state_objects

    @property
    def state_index(self) -> dict[frozenset, int]:
        """Subset-object → id mapping (built on demand; conversion only)."""
        return {subset: i for i, subset in enumerate(self._state_objects)}

    def marker_decode_tables(self) -> tuple[tuple, tuple]:
        """Per-marker-set-id ``(opened, closed)`` variable-name tuples."""
        if self._marker_decode is None:
            self._marker_decode = marker_decode_tables_for(self.marker_sets)
        return self._marker_decode

    def portable_state_key(self, state_id: int) -> tuple[int, ...]:
        """A process-stable key: the subset's member tuple of base ids
        (base interning is deterministic; subset discovery order is not)."""
        return self.subset_members[state_id]

    def resolve_state_key(self, key: tuple[int, ...]) -> int:
        """Re-intern a member tuple received from another process."""
        return self.intern_subset(tuple(key))

    def encode_text(self, text: str) -> list[int]:
        """Translate *text* into symbol ids (``-1`` for foreign characters).

        Introspection only — the engines consume :meth:`encode` (class-id
        buffers, cached per document) instead.
        """
        return encode_symbols(self.symbol_index, text)

    def encode(self, document: object):
        """The cached class-id :class:`~repro.runtime.encoding.EncodedDocument`
        of *document* under this automaton's classing."""
        return self.classing.encode(document)

    def __repr__(self) -> str:
        return (
            f"CompiledSubsetEVA(base_states={self.num_base_states}, "
            f"subsets={self.num_subset_states}, symbols={len(self.symbols)}, "
            f"classes={self.num_classes})"
        )


# Back-compat alias: the subset sprint moved to the kernel module with
# the kernel-spec refactor.
_sprint_subset = subset_sprint

# The two subset-table kernels (dict-keyed slots in discovery order —
# the ``tables="subset"`` spec points).
_subset_arena_kernel = build_kernel(KernelSpec(capture="arena", tables="subset"))
_subset_count_kernel = build_kernel(KernelSpec(capture="count", tables="subset"))


def evaluate_subset_arena(
    subset_eva: CompiledSubsetEVA,
    document: object,
    *,
    fast_path: bool = True,
) -> CompiledResultDag:
    """Algorithm 1 over the lazily determinized automaton, arena output.

    The same loop as :func:`repro.runtime.engine.evaluate_compiled_arena`
    (the ``tables="subset"`` point of the kernel spec in
    :mod:`repro.runtime.kernel`) — cached class-id buffer, skipped
    capturing phases while every live subset is silent, single-run
    sprint — with per-subset ``(start, end)``
    list pairs held in dicts keyed by subset id (the state space grows
    during evaluation, so there is no fixed-size scratch).  The subset
    automaton is deterministic by construction, so the lazy-list append
    discipline holds and every path of the resulting DAG yields a distinct
    mapping.
    """
    encoded = subset_eva.encode(document)
    buf = encoded.buffer
    n = encoded.length
    (
        lists,
        node_markers,
        node_positions,
        node_starts,
        node_ends,
        cell_nodes,
        cell_nexts,
    ) = _subset_arena_kernel(subset_eva, buf, n, fast_path)

    is_final = subset_eva.subset_is_final
    final_entries = [
        (subset_id, start, end)
        for subset_id, (start, end) in lists.items()
        if is_final[subset_id]
    ]
    return CompiledResultDag(
        subset_eva,
        n,
        node_markers,
        node_positions,
        node_starts,
        node_ends,
        cell_nodes,
        cell_nexts,
        final_entries,
    )


def count_subset(
    subset_eva: CompiledSubsetEVA,
    document: object,
    *,
    fast_path: bool = True,
) -> int:
    """Algorithm 3 over the lazily determinized automaton.

    Counts without determinizing up front and without building any DAG;
    the per-subset partial-run counts live in a dict keyed by subset id.
    Row discovery — and the cached document encoding — is shared with (and
    cached for) every other evaluation through the same
    :class:`CompiledSubsetEVA`, and quiescent stretches sprint exactly as
    in :func:`evaluate_subset_arena`.
    """
    encoded = subset_eva.encode(document)
    buf = encoded.buffer
    n = encoded.length
    counts = _subset_count_kernel(subset_eva, buf, n, fast_path)

    is_final = subset_eva.subset_is_final
    return sum(amount for subset_id, amount in counts.items() if is_final[subset_id])
