"""The compiled result arena: a flat-integer :class:`CompiledResultDag`.

The reference preprocessing (Algorithm 1) materializes one
:class:`~repro.enumeration.dag.DagNode` object per annotated variable
transition and one linked-list cell object per list operation.  Enumeration
(Algorithm 2) and DAG counting then chase Python object pointers.  For the
compiled runtime this module replaces the whole object graph with a *node
arena* — parallel integer arrays:

* ``node_markers[i]`` / ``node_positions[i]`` — the label ``(S, i)`` of DAG
  node ``i``, with the marker set referenced by its interned id;
* ``node_starts[i]`` / ``node_ends[i]`` — node ``i``'s adjacency as a
  ``(start, end)`` cell-index pair (the paper's lazy list, by value);
* ``cell_nodes[c]`` / ``cell_nexts[c]`` — the shared list cells; a payload
  of ``-1`` denotes the ⊥ sink and a next of ``-1`` the unset pointer.

Because lists are plain ``(start, end)`` integer pairs, the paper's
``lazycopy`` becomes a value copy and costs nothing.  Cells only ever
reference nodes created before them, so children always have smaller ids
than their parents and counting is a single forward loop — no recursion, no
memo dictionary.

Enumeration walks the arena with an explicit stack of integers and only
materializes a :class:`~repro.core.mappings.Mapping` at yield time; the
per-mapping delay is still bounded by the path length (``2·ℓ + 1`` steps
for ``ℓ`` variables), just with a far smaller constant than the reference
walker.

Lossless conversions to and from the legacy
:class:`~repro.enumeration.evaluate.ResultDag` are provided for
cross-checking, and :meth:`CompiledResultDag.to_portable` /
:meth:`CompiledResultDag.from_portable` give the flat picklable form the
process-parallel batch mode ships between workers.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.enumeration.dag import BOTTOM, DagNode
from repro.enumeration.evaluate import ResultDag
from repro.enumeration.lazylist import LazyList

__all__ = ["CompiledResultDag", "NIL"]

#: Sentinel for "no cell" / "⊥ payload" / "unset next pointer".
NIL = -1


class CompiledResultDag:
    """The output of the compiled preprocessing phase, as flat int arrays.

    Duck-compatible with :class:`~repro.enumeration.evaluate.ResultDag` for
    everything downstream code uses — iteration, :meth:`mappings`,
    :meth:`count`, :meth:`node_count`, :meth:`is_empty` and
    :attr:`document_length` — without ever materializing ``DagNode``
    objects.

    ``tables`` is the compiled automaton the arena was produced from (a
    :class:`~repro.runtime.compiled.CompiledEVA` or a
    :class:`~repro.runtime.subset.CompiledSubsetEVA`); it provides the
    interned ``marker_sets`` for decoding and the ``state_objects`` /
    ``source`` needed to rebuild a legacy :class:`ResultDag`.

    ``final_entries`` holds one ``(state_id, start, end)`` triple per
    accepting state that is live at the end of the document.  The arena may
    contain *garbage* nodes (runs that died before the end of the
    document); they are simply never reached by enumeration, and
    :meth:`node_count` reports only reachable nodes, matching the legacy
    structure where dead branches are garbage-collected.
    """

    __slots__ = (
        "tables",
        "document_length",
        "node_markers",
        "node_positions",
        "node_starts",
        "node_ends",
        "cell_nodes",
        "cell_nexts",
        "final_entries",
    )

    def __init__(
        self,
        tables,
        document_length: int,
        node_markers: list[int],
        node_positions: list[int],
        node_starts: list[int],
        node_ends: list[int],
        cell_nodes: list[int],
        cell_nexts: list[int],
        final_entries: list[tuple[int, int, int]],
    ) -> None:
        self.tables = tables
        self.document_length = document_length
        self.node_markers = node_markers
        self.node_positions = node_positions
        self.node_starts = node_starts
        self.node_ends = node_ends
        self.cell_nodes = cell_nodes
        self.cell_nexts = cell_nexts
        self.final_entries = final_entries

    # ------------------------------------------------------------------ #
    # ResultDag-compatible queries
    # ------------------------------------------------------------------ #

    @property
    def automaton(self):
        """The source automaton (for parity with :class:`ResultDag`)."""
        return self.tables.source

    def is_empty(self) -> bool:
        """Whether the spanner produced no output mapping at all."""
        return not self.final_entries

    def num_nodes(self) -> int:
        """The total number of arena nodes, including unreachable ones."""
        return len(self.node_markers)

    def __iter__(self) -> Iterator[Mapping]:
        return self.mappings()

    def mappings(self, keep: frozenset[str] | None = None) -> Iterator[Mapping]:
        """Enumerate the output mappings (Algorithm 2) on integer arrays.

        A depth-first walk over the arena with an explicit stack; each
        frame is ``(cell, end, steps)`` where ``steps`` is the tuple of
        ``(marker_set_id, position)`` labels accumulated so far, in
        increasing position order.  A ⊥ payload completes one path, which
        is decoded into a :class:`Mapping` only then.

        When *keep* is given, only those variables are decoded — the
        arena-level projection of :mod:`repro.runtime.operators`: markers
        of projected-away variables never allocate a
        :class:`~repro.core.spans.Span` (the resulting mappings are not
        deduplicated; projection callers do that).
        """
        cell_nodes = self.cell_nodes
        cell_nexts = self.cell_nexts
        node_markers = self.node_markers
        node_positions = self.node_positions
        node_starts = self.node_starts
        node_ends = self.node_ends
        opens_by_set, closes_by_set = self.tables.marker_decode_tables()

        for _state_id, start, end in self.final_entries:
            stack = [(start, end, ())]
            while stack:
                cell, stop, steps = stack.pop()
                while cell != NIL:
                    node = cell_nodes[cell]
                    following = NIL if cell == stop else cell_nexts[cell]
                    if node == NIL:
                        # ⊥ reached: `steps` is a complete run, decode it.
                        opens: dict[str, int] = {}
                        assignment: dict[str, Span] = {}
                        for set_id, position in steps:
                            for variable in opens_by_set[set_id]:
                                if keep is None or variable in keep:
                                    opens[variable] = position
                            for variable in closes_by_set[set_id]:
                                if keep is None or variable in keep:
                                    assignment[variable] = Span(
                                        opens.pop(variable), position
                                    )
                        yield Mapping(assignment)
                        cell = following
                        continue
                    if following != NIL:
                        stack.append((following, stop, steps))
                    steps = ((node_markers[node], node_positions[node]),) + steps
                    cell = node_starts[node]
                    stop = node_ends[node]

    def count(self) -> int:
        """Count the ⊥-terminated paths (Algorithm 3 on the arena).

        Cells only reference nodes with smaller ids, so a single forward
        pass computes every node's path count without recursion; the
        answer is the sum over the final entry lists.
        """
        cell_nodes = self.cell_nodes
        cell_nexts = self.cell_nexts
        node_starts = self.node_starts
        node_ends = self.node_ends

        counts = [0] * len(node_starts)

        def list_total(start: int, end: int) -> int:
            total = 0
            cell = start
            while cell != NIL:
                node = cell_nodes[cell]
                total += 1 if node == NIL else counts[node]
                if cell == end:
                    break
                cell = cell_nexts[cell]
            return total

        for node in range(len(node_starts)):
            counts[node] = list_total(node_starts[node], node_ends[node])
        return sum(list_total(start, end) for _state, start, end in self.final_entries)

    def node_count(self) -> int:
        """The number of distinct arena nodes reachable from the final lists."""
        cell_nodes = self.cell_nodes
        cell_nexts = self.cell_nexts
        seen = [False] * len(self.node_markers)
        stack: list[int] = []

        def push_list(start: int, end: int) -> None:
            cell = start
            while cell != NIL:
                node = cell_nodes[cell]
                if node != NIL and not seen[node]:
                    seen[node] = True
                    stack.append(node)
                if cell == end:
                    break
                cell = cell_nexts[cell]

        for _state, start, end in self.final_entries:
            push_list(start, end)
        while stack:
            node = stack.pop()
            push_list(self.node_starts[node], self.node_ends[node])
        return sum(seen)

    # ------------------------------------------------------------------ #
    # Lossless conversion to/from the legacy object DAG
    # ------------------------------------------------------------------ #

    def to_result_dag(self) -> ResultDag:
        """Rebuild the legacy :class:`ResultDag` (for cross-checking).

        Node sharing is preserved: arena node ``i`` maps one-to-one onto a
        rebuilt :class:`DagNode`, so path counts and enumeration output are
        identical.  Only reachable nodes are rebuilt.
        """
        marker_sets = self.tables.marker_sets
        state_objects = self.tables.state_objects
        built: dict[int, DagNode] = {}

        def rebuild_list(start: int, end: int) -> LazyList:
            entries: list[int] = []
            cell = start
            while cell != NIL:
                entries.append(self.cell_nodes[cell])
                if cell == end:
                    break
                cell = self.cell_nexts[cell]
            lazy_list = LazyList()
            for node in reversed(entries):
                lazy_list.add(BOTTOM if node == NIL else rebuild_node(node))
            return lazy_list

        def rebuild_node(node: int) -> DagNode:
            if node not in built:
                # Children have smaller ids, so the recursion terminates and
                # is bounded by the longest ancestor chain; rebuild in id
                # order instead to keep it iterative for deep DAGs.
                for child in self._reachable_in_id_order(node):
                    if child not in built:
                        built[child] = DagNode(
                            marker_sets[self.node_markers[child]],
                            self.node_positions[child],
                            rebuild_list(self.node_starts[child], self.node_ends[child]),
                        )
            return built[node]

        final_lists = {
            state_objects[state_id]: rebuild_list(start, end)
            for state_id, start, end in self.final_entries
        }
        return ResultDag(self.tables.source, self.document_length, final_lists)

    def _reachable_in_id_order(self, root: int) -> list[int]:
        """Ids of nodes reachable from *root* (inclusive), ascending."""
        seen = {root}
        stack = [root]
        while stack:
            node = stack.pop()
            cell = self.node_starts[node]
            end = self.node_ends[node]
            while cell != NIL:
                child = self.cell_nodes[cell]
                if child != NIL and child not in seen:
                    seen.add(child)
                    stack.append(child)
                if cell == end:
                    break
                cell = self.cell_nexts[cell]
        return sorted(seen)

    @classmethod
    def from_result_dag(cls, result: ResultDag, tables) -> "CompiledResultDag":
        """Intern a legacy :class:`ResultDag` into an arena (lossless).

        ``tables`` must be the compiled automaton whose ``marker_set_index``
        and ``state_index`` cover the DAG's labels and final states.
        """
        marker_index = tables.marker_set_index
        state_index = tables.state_index
        node_ids: dict[int, int] = {}
        node_markers: list[int] = []
        node_positions: list[int] = []
        node_starts: list[int] = []
        node_ends: list[int] = []
        cell_nodes: list[int] = []
        cell_nexts: list[int] = []

        def intern_list(lazy_list: LazyList) -> tuple[int, int]:
            entries = [
                NIL if child is BOTTOM else node_ids[id(child)] for child in lazy_list
            ]
            if not entries:
                return NIL, NIL
            start = len(cell_nodes)
            for index, payload in enumerate(entries):
                cell_nodes.append(payload)
                cell_nexts.append(
                    start + index + 1 if index + 1 < len(entries) else NIL
                )
            return start, start + len(entries) - 1

        def visit(root: DagNode) -> None:
            stack: list[tuple[DagNode, bool]] = [(root, False)]
            while stack:
                node, expanded = stack.pop()
                if id(node) in node_ids:
                    continue
                if expanded:
                    node_ids[id(node)] = len(node_markers)
                    start, end = intern_list(node.adjacency)
                    node_markers.append(marker_index[node.markers])
                    node_positions.append(node.position)
                    node_starts.append(start)
                    node_ends.append(end)
                else:
                    stack.append((node, True))
                    for child in node.adjacency:
                        if child is not BOTTOM and id(child) not in node_ids:
                            stack.append((child, False))

        final_entries: list[tuple[int, int, int]] = []
        for state, lazy_list in result.final_lists.items():
            for entry in lazy_list:
                if entry is not BOTTOM:
                    visit(entry)
            start, end = intern_list(lazy_list)
            final_entries.append((state_index[state], start, end))

        return cls(
            tables,
            result.document_length,
            node_markers,
            node_positions,
            node_starts,
            node_ends,
            cell_nodes,
            cell_nexts,
            final_entries,
        )

    # ------------------------------------------------------------------ #
    # Portable (process-crossing) form
    # ------------------------------------------------------------------ #

    def to_portable(self) -> tuple:
        """Flatten into picklable tuples of ints.

        Final states are exported through ``tables.portable_state_key`` so
        the triple survives a process boundary even when the receiving side
        interned its states in a different order (the on-the-fly subset
        runtime does).
        """
        portable_key = self.tables.portable_state_key
        return (
            self.document_length,
            tuple(self.node_markers),
            tuple(self.node_positions),
            tuple(self.node_starts),
            tuple(self.node_ends),
            tuple(self.cell_nodes),
            tuple(self.cell_nexts),
            tuple(
                (portable_key(state_id), start, end)
                for state_id, start, end in self.final_entries
            ),
        )

    @classmethod
    def from_portable(cls, portable: tuple, tables) -> "CompiledResultDag":
        """Reattach a portable arena to a compiled automaton."""
        (
            document_length,
            node_markers,
            node_positions,
            node_starts,
            node_ends,
            cell_nodes,
            cell_nexts,
            finals,
        ) = portable
        resolve = tables.resolve_state_key
        return cls(
            tables,
            document_length,
            list(node_markers),
            list(node_positions),
            list(node_starts),
            list(node_ends),
            list(cell_nodes),
            list(cell_nexts),
            [(resolve(key), start, end) for key, start, end in finals],
        )

    def __repr__(self) -> str:
        return (
            f"CompiledResultDag(nodes={len(self.node_markers)}, "
            f"cells={len(self.cell_nodes)}, finals={len(self.final_entries)})"
        )
