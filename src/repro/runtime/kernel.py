"""The single parameterized Algorithm-1 kernel behind every engine.

The paper's Algorithm 1 is one capturing/reading alternation, but the
repository grew eight hand-synchronized transcriptions of it: the legacy
lazy-list engine, the arena engine and the counter
(:mod:`repro.runtime.engine`), the on-the-fly subset pair
(:mod:`repro.runtime.subset`), the streaming chunk loop
(:mod:`repro.runtime.streaming`), the shard summary/replay/count loops
(:mod:`repro.runtime.sharding`) and the run-length arena evaluator
(:mod:`repro.runtime.runlength`).  Every invariant — canonical
sorted-by-id live order, quiescent-sprint parking, scratch ping-pong,
the splice single-assignment check — had to be re-applied copy by copy.

This module replaces the copies with a **kernel spec**: a small frozen
configuration (:class:`KernelSpec`) whose axes name exactly the ways the
loops ever differed, and a source-level composer (:func:`kernel_source`)
that assembles the one canonical loop from shared phase fragments and
compiles it (:func:`build_kernel`).  The engines are now thin wrappers
over the generated callables; the phase machinery lives here, once:

* the **capturing step** (:data:`_CAPTURE_ARENA`, :data:`_CAPTURE_LAZYLIST`,
  :data:`_CAPTURE_COUNT`, :data:`_CAPTURE_FRONTIER`, and the subset
  flavour) — snapshot before additions, exactly the paper's lazycopy;
* the **reading step** (:data:`_READ_ARENA` and friends) — one letter
  transition per live run, the foreign class killing runs uniformly,
  splices guarded by the single-assignment discipline (with the shard
  replay's deferred-fixup variant selected by the ``entry`` axis);
* **sort-to-canonical-order** after any phase that can disorder the live
  list — the invariant shard replay depends on for bit-identical arenas;
* the **quiescent-sprint park/resume** (:func:`sprint`,
  :func:`subset_sprint`, and the per-capture park/resume payloads: a
  lazy list, a ``(start, end)`` pair, a count, or nothing at all);
* the **scratch ping-pong** (current/pending slot swaps, with the
  borrowed arrays handed back through the generated returns).

Composition is *source-level* — each spec's loop is rendered to Python
text and compiled once, at import time of the engine module that uses
it — so the generated kernels carry **zero per-position dispatch
overhead**: the bytecode is the same as the hand-written loops they
replace, which is what keeps the BENCH floors (sprint >=2x, runlength
>=5x, shard overhead, supervised >=0.9) intact.  Because skipped work
and write order are reproduced statement for statement, every arena a
generated kernel builds is **bit-identical** to its pre-refactor engine
(the differential harness pins this arena-for-arena).

Spec axes
=========

``capture``
    What a live run carries and what the capturing phase writes:
    ``"arena"`` (flat :class:`~repro.runtime.dag.CompiledResultDag`
    arrays, ``(start, end)`` cell pairs), ``"lazylist"`` (the legacy
    :class:`~repro.enumeration.lazylist.LazyList` DAG), ``"count"``
    (Algorithm 3 partial-run counts), or ``"frontier"`` (the shard
    summary's capture-free state-set shadow, with its
    ``(state, position) -> frontier`` memo).

``tables``
    Determinization: ``"dense"`` precompiled
    :class:`~repro.runtime.compiled.CompiledEVA` tables, or ``"subset"``
    on-the-fly rows of a
    :class:`~repro.runtime.subset.CompiledSubsetEVA` (dict-keyed slots
    in discovery order — the state space grows while evaluating, so
    there is no fixed-size scratch and no re-sorting of the live set).

``chunking``
    ``"whole"`` buffers run init -> loop -> final capture in one call;
    ``"resumable"`` kernels take the loop state (active set, slot pairs,
    ``quiet``, the arena) as arguments and return it, so the streaming
    evaluator can park a document mid-sprint and resume next chunk.

``emit``
    ``"on_finish"`` or ``"incremental"``.  Emission is a *driver*
    concern — settled-sink flushing happens between chunk advances, not
    inside the position loop — so both values build the same kernel;
    the axis exists so a spec names the full engine configuration.

``kernel``
    ``"scalar"`` steps positions; ``"runlength"`` iterates the RLE run
    list and jumps write-free prefixes via the memoized trajectories of
    a :class:`~repro.runtime.runlength.RunLengthKernel`.

``entry``
    ``"initial"`` seeds the compiled initial state (cell 0 holding the
    ``[⊥]`` list); ``"states"`` starts from a caller-provided entry set
    — the shard replay flavour, with negative placeholder cell refs and
    deferred splice ``fixups`` for lists living in earlier shards.

The supported combinations are enumerated in :data:`SUPPORTED_SPECS`;
:func:`build_kernel` rejects anything else.  ``tools/check_single_kernel.py``
enforces in CI that no raw Algorithm-1 position loop exists outside this
module.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.errors import EvaluationError, NotDeterministicError
from repro.enumeration.dag import BOTTOM, DagNode
from repro.enumeration.lazylist import LazyList
from repro.runtime.compiled import NO_TARGET, CompiledEVA
from repro.runtime.dag import NIL

__all__ = [
    "CAPTURE_MODES",
    "CHUNK_PROTOCOLS",
    "EMIT_MODES",
    "ENTRY_MODES",
    "KERNELS",
    "SUMMARY_MEMO_CAP",
    "SUPPORTED_SPECS",
    "TABLE_MODES",
    "KernelSpec",
    "build_final_capture",
    "build_kernel",
    "kernel_source",
    "sprint",
    "subset_sprint",
]

#: The planner-facing kernel axis (``plan.KERNEL_CHOICES`` imports it,
#: ``runlength.KERNELS`` re-exports it): ``"auto"`` resolves per document
#: from its measured run statistics.
KERNELS: tuple[str, ...] = ("auto", "scalar", "runlength")

CAPTURE_MODES = ("arena", "lazylist", "count", "frontier")
TABLE_MODES = ("dense", "subset")
CHUNK_PROTOCOLS = ("whole", "resumable")
EMIT_MODES = ("on_finish", "incremental")
ENTRY_MODES = ("initial", "states")

#: Cap on the per-shard ``(state, position) -> frontier`` memo of the
#: summary pass; past it, checkpoints are simply not recorded (the pass
#: stays correct, later entry states just re-walk more of the shard).
SUMMARY_MEMO_CAP = 1 << 16


@dataclass(frozen=True)
class KernelSpec:
    """One point in the engine configuration space (see the module doc).

    Defaults describe the plain arena engine; every other engine names
    its variation explicitly.  Specs are hashable and normalized
    (:meth:`normalized`) before building, so two specs differing only in
    loop-invariant axes share one compiled kernel.
    """

    capture: str = "arena"
    tables: str = "dense"
    chunking: str = "whole"
    emit: str = "on_finish"
    kernel: str = "scalar"
    entry: str = "initial"

    def validate(self) -> None:
        for value, options, axis in (
            (self.capture, CAPTURE_MODES, "capture"),
            (self.tables, TABLE_MODES, "tables"),
            (self.chunking, CHUNK_PROTOCOLS, "chunking"),
            (self.emit, EMIT_MODES, "emit"),
            (self.kernel, ("scalar", "runlength"), "kernel"),
            (self.entry, ENTRY_MODES, "entry"),
        ):
            if value not in options:
                raise EvaluationError(
                    f"unknown kernel-spec {axis} {value!r}; "
                    f"expected one of {options}"
                )
        if self.normalized() not in SUPPORTED_SPECS:
            raise EvaluationError(
                f"unsupported kernel-spec combination {self!r}; supported "
                f"specs are {SUPPORTED_SPECS}"
            )

    def normalized(self) -> "KernelSpec":
        """The loop-defining projection of the spec.

        ``emit`` never changes the position loop (emission happens
        between chunk advances), and a resumable kernel always receives
        its live set from the caller, so both normalize away.
        """
        spec = replace(self, emit="on_finish")
        if spec.chunking == "resumable":
            spec = replace(spec, entry="states")
        return spec


#: Every loop the repository ships, one spec each (normalized form).
SUPPORTED_SPECS: tuple[KernelSpec, ...] = (
    KernelSpec(capture="lazylist"),
    KernelSpec(capture="arena"),
    KernelSpec(capture="count"),
    KernelSpec(capture="arena", chunking="resumable", entry="states"),
    KernelSpec(capture="frontier", entry="states"),
    KernelSpec(capture="arena", entry="states"),
    KernelSpec(capture="count", entry="states"),
    KernelSpec(capture="arena", kernel="runlength"),
    KernelSpec(capture="arena", tables="subset"),
    KernelSpec(capture="count", tables="subset"),
)


# ---------------------------------------------------------------------- #
# The sprint helpers (the C-speed quiescent chase, dense and subset)
# ---------------------------------------------------------------------- #


def sprint(
    compiled: CompiledEVA, buf, pos: int, n: int, state: int, use_patterns: bool
) -> tuple[int, int]:
    """Advance a lone silent run until it stops being boring.

    Returns ``(state, pos)``.  ``state == NO_TARGET`` means the run died at
    ``pos``; otherwise either ``pos == n`` (document exhausted, *state*
    still live) or ``state`` is non-silent (a capturing phase is due at
    ``pos``).  Precondition: *state* is silent and ``pos < n``.

    With a ``bytes`` buffer, stretches where *state* self-loops are skipped
    by :meth:`CompiledEVA.sprint_pattern` — a C-level scan for the next
    class id that leaves the state — so the Python-level cost is one
    iteration per state *change*, not per character.
    """
    class_table = compiled.class_table
    silent = compiled.silent
    if use_patterns:
        while True:
            match = compiled.sprint_pattern(state).search(buf, pos)
            if match is None:
                return state, n
            pos = match.start()
            target = class_table[state][buf[pos]]
            pos += 1
            if target < 0:
                return NO_TARGET, pos
            state = target
            if pos >= n or not silent[state]:
                return state, pos
    row = class_table[state]
    while pos < n:
        target = row[buf[pos]]
        pos += 1
        if target < 0:
            return NO_TARGET, pos
        if target != state:
            if not silent[target]:
                return target, pos
            state = target
            row = class_table[state]
    return state, pos


def subset_sprint(
    subset_eva, buf, pos: int, n: int, subset_id: int, use_patterns: bool
) -> tuple[int, int]:
    """Advance a lone silent subset-run; mirrors the dense sprint.

    Returns ``(subset_id, pos)``; ``subset_id == NO_TARGET`` means the run
    died at ``pos``, otherwise either the document is exhausted or the
    subset is non-silent and a capturing phase is due.
    """
    silent = subset_eva.subset_silent
    letter_successor = subset_eva.letter_successor
    if use_patterns:
        while True:
            match = subset_eva.sprint_pattern(subset_id).search(buf, pos)
            if match is None:
                return subset_id, n
            pos = match.start()
            target = letter_successor(subset_id, buf[pos])
            pos += 1
            if target < 0:
                return NO_TARGET, pos
            subset_id = target
            if pos >= n or not silent[subset_id]:
                return subset_id, pos
    while pos < n:
        target = letter_successor(subset_id, buf[pos])
        pos += 1
        if target < 0:
            return NO_TARGET, pos
        if target != subset_id:
            if not silent[target]:
                return target, pos
            subset_id = target
    return subset_id, pos


def _entry_start_ref(index: int) -> int:
    """The placeholder standing for entry list *index*'s start cell."""
    return -(2 + 2 * index)


def _entry_end_ref(index: int) -> int:
    """The placeholder standing for entry list *index*'s end cell."""
    return -(3 + 2 * index)


# ---------------------------------------------------------------------- #
# Phase fragments — each piece of Algorithm-1 machinery, written ONCE.
# Fragments are source text at logical indent 0; the composer indents
# them into the scaffold.  Editing a fragment edits every engine.
# ---------------------------------------------------------------------- #

#: Capturing phase, arena flavour: the (start, end) snapshot *is* the
#: paper's lazycopy (pairs are values), taken before any additions so a
#: transition's source list is its pre-phase value.
_CAPTURE_ARENA = """\
snapshot = [
    (state, cur_start[state], cur_end[state])
    for state in active
    if variable_table[state]
]
for state, old_start, old_end in snapshot:
    for set_id, target in variable_table[state]:
        node = len(node_markers)
        node_markers.append(set_id)
        node_positions.append(position)
        node_starts.append(old_start)
        node_ends.append(old_end)
        cell = len(cell_nodes)
        cell_nodes.append(node)
        target_start = cur_start[target]
        cell_nexts.append(target_start)
        if target_start == NIL:
            cur_end[target] = cell
            active.append(target)
        cur_start[target] = cell
"""

#: Capturing phase, legacy lazy-list flavour (DagNode/LazyList objects).
_CAPTURE_LAZYLIST = """\
snapshot = [
    (state, current[state].lazycopy())
    for state in active
    if variable_table[state]
]
for state, old_list in snapshot:
    for set_id, target in variable_table[state]:
        node = DagNode(marker_sets[set_id], position, old_list)
        target_list = current[target]
        if target_list is None:
            target_list = LazyList()
            current[target] = target_list
            active.append(target)
        target_list.add(node)
"""

#: Capturing phase, Algorithm-3 flavour: add each state's count to its
#: variable targets (snapshot first — fresh targets don't fire here).
_CAPTURE_COUNT = """\
snapshot = [
    (state, counts[state]) for state in active if variable_table[state]
]
for state, amount in snapshot:
    for _set_id, target in variable_table[state]:
        if counts[target] == 0:
            active.append(target)
        counts[target] += amount
"""

#: Capturing phase reduced to its state-set effect (the shard summary's
#: capture-free shadow): each live state with variable transitions adds
#: its targets; snapshot semantics via the list comprehension.
_CAPTURE_FRONTIER = """\
present = set(active)
added = False
for state in [s for s in active if variable_table[s]]:
    for _set_id, target in variable_table[state]:
        if target not in present:
            present.add(target)
            active.append(target)
            added = True
if added:
    active.sort()
"""

#: Capturing phase over the lazily determinized subset rows: per-subset
#: (start, end) pairs live in the `lists` dict (insertion order — the
#: subset state space grows, so there is no canonical id order to keep).
_CAPTURE_SUBSET_ARENA = """\
for subset_id, (old_start, old_end) in list(lists.items()):
    for set_id, target in variable_row(subset_id):
        node = len(node_markers)
        node_markers.append(set_id)
        node_positions.append(position)
        node_starts.append(old_start)
        node_ends.append(old_end)
        cell = len(cell_nodes)
        cell_nodes.append(node)
        current = lists.get(target)
        cell_nexts.append(NIL if current is None else current[0])
        lists[target] = (cell, cell if current is None else current[1])
"""

#: Subset counting capture: dict-accumulated Algorithm 3.
_CAPTURE_SUBSET_COUNT = """\
for subset_id, amount in list(counts.items()):
    for _set_id, target in variable_row(subset_id):
        counts[target] = counts.get(target, 0) + amount
"""

#: Reading phase, arena flavour, per live state.  ``{symbol}`` is the
#: class-id expression and ``{splice}`` the append discipline (local
#: check, or the shard replay's deferred-fixup variant).
_READ_ARENA = """\
old_start = cur_start[state]
old_end = cur_end[state]
cur_start[state] = NIL
target = class_table[state][{symbol}]
if target < 0:
    continue
target_start = pend_start[target]
if target_start == NIL:
    pend_start[target] = old_start
    pend_end[target] = old_end
    next_active.append(target)
    if quiet and not silent[target]:
        quiet = False
else:
{splice}
    pend_end[target] = old_end
"""

#: append(old_list): splice at the end of the target's pending list;
#: the end cell's next pointer must still be unset (the lazy-list
#: single-assignment discipline — violated only by non-determinism).
_SPLICE_LOCAL = """\
end_cell = pend_end[target]
if cell_nexts[end_cell] != NIL:
    raise NotDeterministicError(
        "arena append would overwrite a next pointer; the "
        "compiled automaton is not deterministic"
    )
cell_nexts[end_cell] = old_start
"""

#: The shard-replay splice: an end cell living in an earlier shard is a
#: negative placeholder — defer the one-pointer write to the stitcher
#: (never index the local array with it: Python's negative indexing
#: would silently wrap into a valid slot).
_SPLICE_RELOCATABLE = """\
end_cell = pend_end[target]
if end_cell >= 0:
    if cell_nexts[end_cell] != NIL:
        raise NotDeterministicError(
            "arena append would overwrite a next pointer; "
            "the compiled automaton is not deterministic"
        )
    cell_nexts[end_cell] = old_start
else:
    if end_cell in fixups:
        raise NotDeterministicError(
            "arena append would overwrite a next pointer; "
            "the compiled automaton is not deterministic"
        )
    fixups[end_cell] = old_start
"""

#: Reading phase, legacy lazy-list flavour.
_READ_LAZYLIST = """\
old_list = current[state]
current[state] = None
target = class_table[state][symbol]
if target < 0:
    continue
target_list = pending[target]
if target_list is None:
    target_list = LazyList()
    pending[target] = target_list
    next_active.append(target)
    if quiet and not silent[target]:
        quiet = False
target_list.append(old_list)
"""

#: Reading phase, counting flavour.
_READ_COUNT = """\
amount = counts[state]
counts[state] = 0
if not amount:
    continue
target = class_table[state][symbol]
if target < 0:
    continue
if pending[target] == 0:
    next_active.append(target)
    if quiet and not silent[target]:
        quiet = False
pending[target] += amount
"""

#: The quiescent sprint, dense flavour: a lone silent run parks its
#: payload ({park}/{resume} per capture mode) and chases letter
#: transitions at C speed; several silent runs skip to the next class on
#: which at least one stops self-looping.
_SPRINT_DENSE = """\
if quiet and fast_path:
    if len(active) == 1:
        state = active[0]
{park}
        state, pos = sprint(compiled, buf, pos, n, state, use_patterns)
        if state < 0:
            active = []
            break
{resume}
        active[0] = state
        quiet = silent[state]
        if pos >= n:
            break
    elif use_patterns:
        match = compiled.sprint_pattern_multi(
            tuple(sorted(active))
        ).search(buf, pos)
        if match is None:
            pos = n
            break
        pos = match.start()
"""

#: Per-capture park/resume payloads for the dense sprint (indent 2).
_PARK = {
    "lazylist": "carried = current[state]\ncurrent[state] = None\n",
    "arena": (
        "start = cur_start[state]\n"
        "end = cur_end[state]\n"
        "cur_start[state] = NIL\n"
    ),
    "count": "amount = counts[state]\ncounts[state] = 0\n",
}
_RESUME = {
    "lazylist": "current[state] = carried\n",
    "arena": "cur_start[state] = start\ncur_end[state] = end\n",
    "count": "counts[state] = amount\n",
}

#: The subset sprint: the lone pair/count rides along in a fresh
#: one-entry dict; the multi-run skip works off the dict's keys.
_SPRINT_SUBSET = """\
if quiet and fast_path:
    if len({slots}) == 1:
        ((subset_id, {payload}),) = {slots}.items()
        subset_id, pos = subset_sprint(
            subset_eva, buf, pos, n, subset_id, use_patterns
        )
        if subset_id < 0:
{dead}
        {slots} = {{subset_id: {payload}}}
        quiet = silent[subset_id]
        if pos >= n:
            break
    elif use_patterns:
        match = subset_eva.sprint_pattern_multi(
            tuple(sorted({slots}))
        ).search(buf, pos)
        if match is None:
            pos = n
            break
        pos = match.start()
"""

#: Capturing-phase call with canonical-order restoration: fresh targets
#: appended by the capture are sorted back into the live list — the
#: invariant shard replay relies on for bit-identical fragments.
_CAPTURE_CALL = """\
if not quiet:
    alive = len(active)
    capturing({args})
    if len(active) > alive:
        active.sort()
"""

#: The scratch ping-pong per capture mode (indent 1, after the read
#: loop): swap current/pending slot arrays for the next phase.
_SWAP = {
    "lazylist": "current, pending = pending, current\n",
    "arena": (
        "cur_start, pend_start = pend_start, cur_start\n"
        "cur_end, pend_end = pend_end, cur_end\n"
    ),
    "count": "counts, pending = pending, counts\n",
}

#: The generalized run-length sprint: a run prefix is jumped wholesale
#: exactly when the scalar engine would write nothing over it — every
#: intermediate state silent (no capture cells), no merge (no splice);
#: deaths write nothing and stay free.  Lone runs follow the memoized
#: per-class trajectory (state changes and death in O(1)); several runs
#: jump together as far as the mask path proves the prefix free.
_SPRINT_RUNLENGTH = """\
if quiet and fast_path:
    if len(active) == 1:
        state = active[0]
        kind, seq, _cycle = rlk.sprint_path(cls, state)
        if kind == "dies" and remaining >= len(seq):
            cur_start[state] = NIL
            active = []
            dead = True
            break
        if kind == "exits" and remaining > len(seq) - 2:
            consumed = len(seq) - 1
            landing = seq[-1]
            quiet = False
        else:
            consumed = remaining
            landing = rlk.silent_target(cls, state, consumed)
        start = cur_start[state]
        end = cur_end[state]
        cur_start[state] = NIL
        cur_start[landing] = start
        cur_end[landing] = end
        active[0] = landing
        pos += consumed
        remaining -= consumed
        continue
    mask = 0
    for state in active:
        mask |= 1 << state
    seq_masks, cycle = rlk.mask_path(cls, mask)
    free = (
        remaining
        if cycle is not None
        else min(remaining, len(seq_masks) - 1)
    )
    if free:
        moved = []
        for state in active:
            target = rlk.silent_target(cls, state, free)
            if target is not None:
                moved.append(
                    (target, cur_start[state], cur_end[state])
                )
            cur_start[state] = NIL
        for target, start, end in moved:
            cur_start[target] = start
            cur_end[target] = end
        active = sorted(target for target, _s, _e in moved)
        pos += free
        remaining -= free
        if not active:
            dead = True
            break
        continue
"""

#: Arena-array allocation (cell 0 is the initial list [⊥] when the
#: kernel seeds the initial state or replays the first shard).
_ARENA_ALLOC = """\
node_markers = []
node_positions = []
node_starts = []
node_ends = []
cell_nodes = [NIL]
cell_nexts = [NIL]
"""


def _indent(fragment: str, level: int) -> str:
    pad = "    " * level
    return "".join(
        pad + line if line.strip() else line
        for line in fragment.splitlines(keepends=True)
    )


# ---------------------------------------------------------------------- #
# Source composition
# ---------------------------------------------------------------------- #


def _dense_scalar_source(spec: KernelSpec) -> str:
    """The dense scalar loop: whole/resumable x initial/states x capture."""
    capture = spec.capture
    resumable = spec.chunking == "resumable"
    replay = spec.entry == "states" and capture == "arena" and not resumable
    entry_count = spec.entry == "states" and capture == "count"

    # --- signature ---------------------------------------------------- #
    if resumable:
        signature = (
            "compiled, buf, n, offset, cur_start, cur_end, pend_start, "
            "pend_end, active, quiet, node_markers, node_positions, "
            "node_starts, node_ends, cell_nodes, cell_nexts, fast_path"
        )
    elif replay:
        signature = "compiled, buf, n, base, entries, is_first, is_last, fast_path"
    elif entry_count:
        signature = "compiled, buf, n, entry, include_final, fast_path"
    else:
        signature = "compiled, buf, n, scratch, fast_path"

    parts = [f"def __kernel({signature}):\n"]
    emit = parts.append

    # --- prologue: table bindings and slot arrays --------------------- #
    emit("    variable_table = compiled.variable_table\n")
    emit("    class_table = compiled.class_table\n")
    emit("    silent = compiled.silent\n")
    if capture == "lazylist":
        emit("    marker_sets = compiled.marker_sets\n")
    emit("    use_patterns = fast_path and isinstance(buf, bytes)\n")
    if not resumable:
        if replay:
            emit("    num_states = compiled.num_states\n")
            emit("    cur_start = [NIL] * num_states\n")
            emit("    cur_end = [NIL] * num_states\n")
            emit("    pend_start = [NIL] * num_states\n")
            emit("    pend_end = [NIL] * num_states\n")
            emit("    node_markers = []\n")
            emit("    node_positions = []\n")
            emit("    node_starts = []\n")
            emit("    node_ends = []\n")
            emit("    if is_first:\n")
            emit("        cell_nodes = [NIL]\n")
            emit("        cell_nexts = [NIL]\n")
            emit("        cur_start[compiled.initial] = 0\n")
            emit("        cur_end[compiled.initial] = 0\n")
            emit("    else:\n")
            emit("        cell_nodes = []\n")
            emit("        cell_nexts = []\n")
            emit("        for index, state in enumerate(entries):\n")
            emit("            cur_start[state] = _entry_start_ref(index)\n")
            emit("            cur_end[state] = _entry_end_ref(index)\n")
            emit("    active = sorted(entries)\n")
            emit("    quiet = all(silent[state] for state in active)\n")
            emit("    fixups = {}\n")
        elif entry_count:
            emit("    num_states = compiled.num_states\n")
            emit("    counts = [0] * num_states\n")
            emit("    pending = [0] * num_states\n")
            emit("    counts[entry] = 1\n")
            emit("    active = [entry]\n")
            emit("    quiet = silent[entry]\n")
        elif capture == "lazylist":
            emit("    current = scratch.current\n")
            emit("    pending = scratch.pending\n")
            emit("    initial_list = LazyList()\n")
            emit("    initial_list.add(BOTTOM)\n")
            emit("    initial = compiled.initial\n")
            emit("    current[initial] = initial_list\n")
            emit("    active = [initial]\n")
            emit("    quiet = silent[initial]\n")
        elif capture == "arena":
            emit("    cur_start = scratch.cur_start\n")
            emit("    cur_end = scratch.cur_end\n")
            emit("    pend_start = scratch.pend_start\n")
            emit("    pend_end = scratch.pend_end\n")
            emit(_indent(_ARENA_ALLOC, 1))
            emit("    initial = compiled.initial\n")
            emit("    cur_start[initial] = 0\n")
            emit("    cur_end[initial] = 0\n")
            emit("    active = [initial]\n")
            emit("    quiet = silent[initial]\n")
        else:  # count, whole, initial
            emit("    counts = scratch.count_cur\n")
            emit("    pending = scratch.count_pend\n")
            emit("    initial = compiled.initial\n")
            emit("    counts[initial] = 1\n")
            emit("    active = [initial]\n")
            emit("    quiet = silent[initial]\n")

    # --- the capturing step as a closure ------------------------------ #
    if capture == "count":
        emit("\n    def capturing():\n")
        emit(_indent(_CAPTURE_COUNT, 2))
        capture_args = ""
    else:
        emit("\n    def capturing(position):\n")
        body = _CAPTURE_ARENA if capture == "arena" else _CAPTURE_LAZYLIST
        emit(_indent(body, 2))
        if resumable:
            capture_args = "offset + pos"
        elif replay:
            capture_args = "base + pos"
        else:
            capture_args = "pos"

    # --- the position loop -------------------------------------------- #
    emit("\n    pos = 0\n")
    emit("    while pos < n:\n")
    emit(
        _indent(
            _SPRINT_DENSE.format(
                park=_indent(_PARK[capture], 2).rstrip("\n"),
                resume=_indent(_RESUME[capture], 2).rstrip("\n"),
            ),
            2,
        )
    )
    emit(_indent(_CAPTURE_CALL.format(args=capture_args), 2))
    emit("\n        symbol = buf[pos]\n")
    emit("        pos += 1\n")
    emit("        next_active = []\n")
    emit("        quiet = True\n")
    emit("        for state in active:\n")
    if capture == "arena":
        splice = _SPLICE_RELOCATABLE if replay else _SPLICE_LOCAL
        read = _READ_ARENA.format(
            symbol="symbol", splice=_indent(splice, 1).rstrip("\n")
        )
    elif capture == "lazylist":
        read = _READ_LAZYLIST
    else:
        read = _READ_COUNT
    emit(_indent(read, 3))
    emit(_indent(_SWAP[capture], 2))
    emit("        if len(next_active) > 1:\n")
    emit("            next_active.sort()\n")
    emit("        active = next_active\n")
    emit("        if not active:\n")
    emit("            break\n")

    # --- final capturing phase and returns ----------------------------- #
    if resumable:
        emit("\n    return (cur_start, cur_end, pend_start, pend_end, active, quiet)\n")
    elif replay:
        emit("\n    final_entries = []\n")
        emit("    if is_last:\n")
        emit("        if active and not quiet:\n")
        emit("            alive = len(active)\n")
        emit("            capturing(base + n)\n")
        emit("            if len(active) > alive:\n")
        emit("                active.sort()\n")
        emit("        is_final = compiled.is_final\n")
        emit("        for state in active:\n")
        emit("            if is_final[state] and cur_start[state] != NIL:\n")
        emit(
            "                final_entries.append"
            "((state, cur_start[state], cur_end[state]))\n"
        )
        emit(
            "    return (active, cur_start, cur_end, node_markers, "
            "node_positions, node_starts, node_ends, cell_nodes, "
            "cell_nexts, fixups, final_entries)\n"
        )
    elif entry_count:
        emit("\n    if include_final and active and not quiet:\n")
        emit("        capturing()\n")
        emit("    return (active, counts)\n")
    else:
        emit("\n    if active and not quiet:\n")
        emit("        alive = len(active)\n")
        emit(f"        capturing({capture_args})\n")
        emit("        if len(active) > alive:\n")
        emit("            active.sort()\n")
        if capture == "lazylist":
            emit("    return (active, current, pending)\n")
        elif capture == "arena":
            emit(
                "    return (active, cur_start, cur_end, pend_start, "
                "pend_end, node_markers, node_positions, node_starts, "
                "node_ends, cell_nodes, cell_nexts)\n"
            )
        else:
            emit("    return (active, counts, pending)\n")
    return "".join(parts)


def _frontier_source() -> str:
    """The shard summary's capture-free state-set shadow of the loop.

    Whenever the live set collapses to one state, ``(state, position)``
    fully determines the rest of the run; the caller-provided *memo*
    caches those checkpoints across entry states.
    """
    parts = ["def __kernel(compiled, buf, n, entry, memo, fast_path):\n"]
    emit = parts.append
    emit("    class_table = compiled.class_table\n")
    emit("    variable_table = compiled.variable_table\n")
    emit("    silent = compiled.silent\n")
    emit("    use_patterns = fast_path and isinstance(buf, bytes)\n")
    emit("\n    active = [entry]\n")
    emit("    quiet = silent[entry]\n")
    emit("    trail = []\n")
    emit("    frontier = None\n")
    emit("\n    pos = 0\n")
    emit("    while pos < n:\n")
    emit("        if len(active) == 1:\n")
    emit("            key = (active[0], pos)\n")
    emit("            if memo is not None:\n")
    emit("                hit = memo.get(key)\n")
    emit("                if hit is not None:\n")
    emit("                    frontier = hit\n")
    emit("                    break\n")
    emit("                if len(memo) < SUMMARY_MEMO_CAP:\n")
    emit("                    trail.append(key)\n")
    emit("        if quiet and fast_path:\n")
    emit("            if len(active) == 1:\n")
    emit(
        "                state, pos = sprint"
        "(compiled, buf, pos, n, active[0], use_patterns)\n"
    )
    emit("                if state < 0:\n")
    emit("                    active = []\n")
    emit("                    break\n")
    emit("                active[0] = state\n")
    emit("                quiet = silent[state]\n")
    emit("                if pos >= n:\n")
    emit("                    break\n")
    emit("                continue\n")
    emit("            elif use_patterns:\n")
    emit(
        "                match = compiled.sprint_pattern_multi"
        "(tuple(active)).search(buf, pos)\n"
    )
    emit("                if match is None:\n")
    emit("                    pos = n\n")
    emit("                    break\n")
    emit("                pos = match.start()\n")
    emit("        if not quiet:\n")
    emit(_indent(_CAPTURE_FRONTIER, 3))
    emit("\n        symbol = buf[pos]\n")
    emit("        pos += 1\n")
    emit("        seen = set()\n")
    emit("        next_active = []\n")
    emit("        quiet = True\n")
    emit("        for state in active:\n")
    emit("            target = class_table[state][symbol]\n")
    emit("            if target < 0 or target in seen:\n")
    emit("                continue\n")
    emit("            seen.add(target)\n")
    emit("            next_active.append(target)\n")
    emit("            if quiet and not silent[target]:\n")
    emit("                quiet = False\n")
    emit("        next_active.sort()\n")
    emit("        active = next_active\n")
    emit("        if not active:\n")
    emit("            break\n")
    emit("\n    if frontier is None:\n")
    emit("        frontier = tuple(active)\n")
    emit("    if memo is not None:\n")
    emit("        for key in trail:\n")
    emit("            memo[key] = frontier\n")
    emit("    return frontier\n")
    return "".join(parts)


def _runlength_source() -> str:
    """The arena loop over the RLE run list with the generalized sprint.

    Scalar positions run exactly the arena fragments above (same
    snapshot order, same splice discipline, same canonical live order);
    jumped positions write nothing by construction, so the produced
    arena is bit-identical to the scalar engine's.
    """
    parts = ["def __kernel(compiled, rlk, runs, n, scratch, fast_path):\n"]
    emit = parts.append
    emit("    cur_start = scratch.cur_start\n")
    emit("    cur_end = scratch.cur_end\n")
    emit("    pend_start = scratch.pend_start\n")
    emit("    pend_end = scratch.pend_end\n")
    emit("    variable_table = compiled.variable_table\n")
    emit("    class_table = compiled.class_table\n")
    emit("    silent = compiled.silent\n")
    emit(_indent(_ARENA_ALLOC, 1))
    emit("    initial = compiled.initial\n")
    emit("    cur_start[initial] = 0\n")
    emit("    cur_end[initial] = 0\n")
    emit("    active = [initial]\n")
    emit("    quiet = silent[initial]\n")
    emit("\n    def capturing(position):\n")
    emit(_indent(_CAPTURE_ARENA, 2))
    emit("\n    pos = 0\n")
    emit("    dead = False\n")
    emit("    for cls, length in runs:\n")
    emit("        remaining = length\n")
    emit("        while remaining:\n")
    emit(_indent(_SPRINT_RUNLENGTH, 3))
    emit(_indent(_CAPTURE_CALL.format(args="pos"), 3))
    emit("\n            pos += 1\n")
    emit("            remaining -= 1\n")
    emit("            next_active = []\n")
    emit("            quiet = True\n")
    emit("            for state in active:\n")
    emit(
        _indent(
            _READ_ARENA.format(
                symbol="cls", splice=_indent(_SPLICE_LOCAL, 1).rstrip("\n")
            ),
            4,
        )
    )
    emit(_indent(_SWAP["arena"], 3))
    emit("            if len(next_active) > 1:\n")
    emit("                next_active.sort()\n")
    emit("            active = next_active\n")
    emit("            if not active:\n")
    emit("                dead = True\n")
    emit("                break\n")
    emit("        if dead:\n")
    emit("            break\n")
    emit("\n    if active and not quiet:\n")
    emit("        alive = len(active)\n")
    emit("        capturing(n)\n")
    emit("        if len(active) > alive:\n")
    emit("            active.sort()\n")
    emit(
        "    return (active, cur_start, cur_end, pend_start, pend_end, "
        "node_markers, node_positions, node_starts, node_ends, "
        "cell_nodes, cell_nexts)\n"
    )
    return "".join(parts)


def _subset_source(spec: KernelSpec) -> str:
    """The on-the-fly subset loop: dict-keyed slots in discovery order.

    The subset automaton's state space grows while evaluating, so there
    is no fixed-size scratch and no sorted-active invariant — slot dicts
    iterate in insertion order, exactly as the state ids are discovered.
    """
    arena = spec.capture == "arena"
    slots = "lists" if arena else "counts"
    parts = ["def __kernel(subset_eva, buf, n, fast_path):\n"]
    emit = parts.append
    emit("    use_patterns = fast_path and isinstance(buf, bytes)\n")
    if arena:
        emit(_indent(_ARENA_ALLOC, 1))
    emit("    variable_row = subset_eva.variable_row\n")
    emit("    letter_successor = subset_eva.letter_successor\n")
    emit("    silent = subset_eva.subset_silent\n")
    if arena:
        emit("    lists = {subset_eva.initial: (0, 0)}\n")
        emit("    quiet = silent[subset_eva.initial]\n")
        emit("\n    def capturing(position):\n")
        emit(_indent(_CAPTURE_SUBSET_ARENA, 2))
    else:
        emit("    counts = {subset_eva.initial: 1}\n")
        emit("    quiet = silent[subset_eva.initial]\n")
        emit("\n    def capturing():\n")
        emit(_indent(_CAPTURE_SUBSET_COUNT, 2))
    emit("\n    pos = 0\n")
    emit("    while pos < n:\n")
    if arena:
        dead = _indent("lists = {}\nbreak\n", 3).rstrip("\n")
        payload = "pair"
    else:
        dead = _indent("return {}\n", 3).rstrip("\n")
        payload = "amount"
    emit(
        _indent(
            _SPRINT_SUBSET.format(slots=slots, payload=payload, dead=dead), 2
        )
    )
    emit("        if not quiet:\n")
    emit(f"            capturing({'pos' if arena else ''})\n")
    emit("\n        symbol = buf[pos]\n")
    emit("        pos += 1\n")
    if arena:
        emit("        old_lists = lists\n")
        emit("        lists = {}\n")
        emit("        quiet = True\n")
        emit("        for subset_id, (old_start, old_end) in old_lists.items():\n")
        emit("            target = letter_successor(subset_id, symbol)\n")
        emit("            if target < 0:\n")
        emit("                continue\n")
        emit("            current = lists.get(target)\n")
        emit("            if current is None:\n")
        emit("                lists[target] = (old_start, old_end)\n")
        emit("                if quiet and not silent[target]:\n")
        emit("                    quiet = False\n")
        emit("            else:\n")
        emit("                end_cell = current[1]\n")
        emit("                if cell_nexts[end_cell] != NIL:\n")
        emit("                    raise NotDeterministicError(\n")
        emit(
            '                        "arena append would overwrite a next '
            'pointer; the "\n'
        )
        emit(
            '                        "subset construction produced a '
            'non-deterministic row"\n'
        )
        emit("                    )\n")
        emit("                cell_nexts[end_cell] = old_start\n")
        emit("                lists[target] = (current[0], old_end)\n")
        emit("        if not lists:\n")
        emit("            break\n")
        emit("\n    if lists and not quiet:\n")
        emit("        capturing(pos)\n")
        emit(
            "    return (lists, node_markers, node_positions, node_starts, "
            "node_ends, cell_nodes, cell_nexts)\n"
        )
    else:
        emit("        previous = counts\n")
        emit("        counts = {}\n")
        emit("        quiet = True\n")
        emit("        for subset_id, amount in previous.items():\n")
        emit("            target = letter_successor(subset_id, symbol)\n")
        emit("            if target < 0:\n")
        emit("                continue\n")
        emit("            if target not in counts:\n")
        emit("                counts[target] = amount\n")
        emit("                if quiet and not silent[target]:\n")
        emit("                    quiet = False\n")
        emit("            else:\n")
        emit("                counts[target] += amount\n")
        emit("        if not counts:\n")
        emit("            return {}\n")
        emit("\n    if counts and not quiet:\n")
        emit("        capturing()\n")
        emit("    return counts\n")
    return "".join(parts)


def kernel_source(spec: KernelSpec) -> str:
    """Render the Python source of the loop *spec* describes."""
    spec.validate()
    spec = spec.normalized()
    if spec.tables == "subset":
        return _subset_source(spec)
    if spec.kernel == "runlength":
        return _runlength_source()
    if spec.capture == "frontier":
        return _frontier_source()
    return _dense_scalar_source(spec)


_NAMESPACE = {
    "NIL": NIL,
    "NO_TARGET": NO_TARGET,
    "NotDeterministicError": NotDeterministicError,
    "LazyList": LazyList,
    "DagNode": DagNode,
    "BOTTOM": BOTTOM,
    "sprint": sprint,
    "subset_sprint": subset_sprint,
    "_entry_start_ref": _entry_start_ref,
    "_entry_end_ref": _entry_end_ref,
    "SUMMARY_MEMO_CAP": SUMMARY_MEMO_CAP,
}

_KERNEL_CACHE: dict[KernelSpec, object] = {}


def _compile(source: str, name: str):
    namespace = dict(_NAMESPACE)
    exec(compile(source, f"<{name}>", "exec"), namespace)
    fn = namespace["__kernel"]
    fn.__name__ = name
    fn.__qualname__ = name
    fn.__kernel_source__ = source
    return fn


def build_kernel(spec: KernelSpec):
    """The compiled loop for *spec* (cached per normalized spec).

    The returned callable's signature depends on the spec — engines bind
    it at import time and wrap it behind their stable public API.  Its
    generated source is attached as ``__kernel_source__``.
    """
    spec.validate()
    spec = spec.normalized()
    fn = _KERNEL_CACHE.get(spec)
    if fn is None:
        name = "kernel_{}_{}_{}_{}_{}".format(
            spec.capture, spec.tables, spec.chunking, spec.kernel, spec.entry
        )
        fn = _compile(kernel_source(spec), name)
        _KERNEL_CACHE[spec] = fn
    return fn


_FINAL_CAPTURE_SOURCE = (
    "def __kernel(compiled, cur_start, cur_end, active, quiet, "
    "node_markers, node_positions, node_starts, node_ends, "
    "cell_nodes, cell_nexts, position):\n"
    "    variable_table = compiled.variable_table\n"
    "    if active and not quiet:\n"
    "        alive = len(active)\n" + _indent(_CAPTURE_ARENA, 2) + ""
    "        if len(active) > alive:\n"
    "            active.sort()\n"
)

_FINAL_CAPTURE = None


def build_final_capture():
    """The stand-alone arena final-capturing phase (resumable kernels).

    A resumable kernel carries its live state between chunks and never
    runs the final phase itself; the stream driver calls this at
    ``finish()``.  Composed from the same :data:`_CAPTURE_ARENA`
    fragment as every arena kernel, so the phase exists exactly once.
    Mutates ``active`` and the arrays in place.
    """
    global _FINAL_CAPTURE
    if _FINAL_CAPTURE is None:
        _FINAL_CAPTURE = _compile(_FINAL_CAPTURE_SOURCE, "kernel_final_capture")
    return _FINAL_CAPTURE
