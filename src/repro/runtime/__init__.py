"""The compiled runtime: dense integer tables and the batch engine.

This package is the performance layer on top of the paper-faithful
reference implementation: :func:`compile_eva` interns a deterministic
sequential eVA into a :class:`CompiledEVA`, :func:`evaluate_compiled` runs
Algorithm 1 on the dense tables, and :func:`run_batch` streams many
documents through one compiled automaton, serially or across processes.
"""

from repro.runtime.batch import freeze_result, run_batch, thaw_result
from repro.runtime.compiled import CompiledEVA, compile_eva
from repro.runtime.engine import EvaluationScratch, evaluate_compiled

__all__ = [
    "CompiledEVA",
    "EvaluationScratch",
    "compile_eva",
    "evaluate_compiled",
    "freeze_result",
    "run_batch",
    "thaw_result",
]
