"""The compiled runtime: dense integer tables, arenas and the batch engine.

This package is the performance layer on top of the paper-faithful
reference implementation, organised around the
:class:`~repro.runtime.plan.ExecutionPlan` abstraction:

* :func:`compile_eva` interns a deterministic sequential eVA into a
  :class:`CompiledEVA`;
* :func:`evaluate_compiled_arena` runs Algorithm 1 on the dense tables and
  builds the flat :class:`CompiledResultDag` node arena natively (no
  ``DagNode`` objects), on which enumeration and counting are integer-only;
* :class:`CompiledSubsetEVA` / :func:`evaluate_subset_arena` implement
  on-the-fly subset construction, so non-deterministic sequential eVAs
  evaluate without an up-front determinization;
* :func:`count_compiled` / :func:`count_subset` are the integer rewrites of
  Algorithm 3;
* :mod:`repro.runtime.encoding` translates documents once per
  alphabet-classing signature into cached class-id buffers
  (:class:`SymbolClassing` / :class:`EncodedDocument`) consumed by every
  engine above — together with the quiescent-run fast path, the layer that
  drives the per-character constant toward C speed;
* :func:`choose_plan` picks the engine from automaton statistics, and
  :func:`run_batch` streams many documents through one compiled automaton,
  serially or across processes;
* :class:`StreamingEvaluator` (:mod:`repro.runtime.streaming`) feeds the
  arena engine one chunk at a time — whole-document results on
  :meth:`finish`, or exact incremental emission of settled mappings with
  a compacted, bounded arena;
* :mod:`repro.runtime.operators` holds the physical operators of hybrid
  plans — fused leaves plus hash join, merge union and arena projection
  executing the cut edges of an optimized algebra expression.
"""

from repro.runtime.batch import freeze_result, run_batch, thaw_result
from repro.runtime.compiled import CompiledEVA, compile_eva
from repro.runtime.dag import CompiledResultDag
from repro.runtime.encoding import (
    EncodedDocument,
    SymbolClassing,
    encoding_passes,
    reset_encoding_passes,
)
from repro.runtime.engine import (
    EvaluationScratch,
    count_compiled,
    evaluate_compiled,
    evaluate_compiled_arena,
)
from repro.runtime.operators import (
    ArenaProject,
    FusedLeaf,
    HashJoin,
    MergeUnion,
    OperatorResult,
    PhysicalOperator,
    render_physical,
)
from repro.runtime.plan import ENGINE_CHOICES, ExecutionPlan, choose_plan
from repro.runtime.streaming import (
    StreamedResult,
    StreamingEvaluator,
    evaluate_streaming,
    settled_sinks,
)
from repro.runtime.subset import CompiledSubsetEVA, count_subset, evaluate_subset_arena

__all__ = [
    "ArenaProject",
    "CompiledEVA",
    "CompiledResultDag",
    "CompiledSubsetEVA",
    "ENGINE_CHOICES",
    "EncodedDocument",
    "EvaluationScratch",
    "ExecutionPlan",
    "FusedLeaf",
    "HashJoin",
    "MergeUnion",
    "OperatorResult",
    "PhysicalOperator",
    "StreamedResult",
    "StreamingEvaluator",
    "SymbolClassing",
    "choose_plan",
    "compile_eva",
    "count_compiled",
    "count_subset",
    "encoding_passes",
    "evaluate_compiled",
    "evaluate_compiled_arena",
    "evaluate_streaming",
    "evaluate_subset_arena",
    "freeze_result",
    "settled_sinks",
    "render_physical",
    "reset_encoding_passes",
    "run_batch",
    "thaw_result",
]
