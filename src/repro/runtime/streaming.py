"""Streaming evaluation: chunk-fed documents, incremental emission.

The preprocessing phase of the paper (Algorithm 1) is a single
left-to-right pass — it never looks ahead and never looks back further
than the lists it already built.  That makes it naturally *online*, yet
every other engine in this repository requires the whole document in
memory before emitting anything.  This module closes the gap with a
:class:`StreamingEvaluator` that accepts the document in chunks
(:meth:`~StreamingEvaluator.feed`) and finalizes on
:meth:`~StreamingEvaluator.finish`:

* each chunk is translated with the compiled automaton's cached
  :class:`~repro.runtime.encoding.SymbolClassing` tables (the same
  C-level ``bytes.translate`` pass the whole-document engines use, just
  per chunk), so the evaluator never materializes a whole-document
  class-id buffer;
* the per-position loop is the arena kernel of
  :mod:`repro.runtime.kernel` in its *resumable* flavour (the
  ``chunking="resumable"`` spec point) — the same generated phases as
  :func:`~repro.runtime.engine.evaluate_compiled_arena`, quiescent-run
  sprint included, but with the live state (active set, ``(start, end)``
  slot pairs, the ``quiet`` flag and the arena arrays) passed in and
  handed back across chunk boundaries: a sprint interrupted by a chunk
  boundary resumes at C speed in the next chunk;
* ``bytes`` chunks are decoded by an incremental UTF-8 decoder, so a
  multi-byte character split across two chunks is reassembled before it
  reaches the automaton.

Two output modes:

``emit="on_finish"``
    :meth:`finish` returns the *same* :class:`~repro.runtime.dag.CompiledResultDag`
    arena the whole-document engine builds — array for array (a unit test
    pins the identity), so everything downstream (enumeration, counting,
    the batch portable form) works unchanged.

``emit="incremental"``
    :meth:`feed` returns the mappings that became *settled* during the
    chunk.  A mapping is settled when its run has reached a **settled
    sink** — a final state with no variable transitions that self-loops
    on every class of the compiled alphabet.  Runs parked there can never
    gain markers, never leave the state and never die on in-alphabet
    input, so their mappings are in the output of *every* continuation of
    the stream — emitting them early is exact, and the constant-delay
    guarantee carries over (each settled mapping is decoded by the same
    bounded arena walk Algorithm 2 performs).  Flushed list heads are cut
    from the live structure and the arena is compacted to the cells still
    reachable from live runs, so the buffered arena stays bounded by the
    in-flight state instead of growing with the whole output (the
    ``tailing-logs`` property test pins ``peak_arena_cells`` strictly
    below the whole-document arena).  One guard keeps early emission
    exact: once a mapping has been delivered, a character outside the
    compiled alphabet raises a :class:`StreamingError` — it would kill
    even the settled sinks, retracting what was already handed out.
    Before the first delivery the engines' kill-the-runs semantics apply
    unchanged (the whole-document output is empty either way).  Streams
    that may carry arbitrary bytes should declare a larger alphabet or
    use ``emit="on_finish"``.

The evaluator works on the dense tables of a
:class:`~repro.runtime.compiled.CompiledEVA` (the planner's streaming
mode resolves every engine request to ``"compiled"``: a lazily
determinized runtime could discover new rows mid-stream, which the
settled-sink analysis done at construction time could not see).
"""

from __future__ import annotations

import codecs

from repro.core.errors import EvaluationError, StreamingError
from repro.core.mappings import Mapping
from repro.runtime.compiled import CompiledEVA
from repro.runtime.dag import NIL, CompiledResultDag
from repro.runtime.engine import EvaluationScratch, _checked_scratch
from repro.runtime.kernel import KernelSpec, build_final_capture, build_kernel

__all__ = [
    "EMIT_MODES",
    "StreamedResult",
    "StreamingEvaluator",
    "evaluate_streaming",
    "settled_sinks",
]

EMIT_MODES = ("on_finish", "incremental")

#: Compact the arena only once it has doubled past this floor, so tiny
#: streams never pay the rebuild and long streams amortize it to O(1)
#: per retained cell.
COMPACT_FLOOR_CELLS = 64

# The chunk loop: the arena kernel in its resumable flavour — loop state
# (active set, slot pairs, quiet flag, arena arrays) is passed in and
# handed back instead of initialized/finalized per call — and the
# stand-alone final capturing phase run once at finish().
_advance_kernel = build_kernel(
    KernelSpec(capture="arena", chunking="resumable", entry="states")
)
_final_capture = build_final_capture()


def settled_sinks(compiled: CompiledEVA) -> frozenset[int]:
    """The state ids whose runs are settled the moment they arrive.

    A state qualifies when it is final, has no extended variable
    transition (its list is never snapshotted into new DAG nodes) and
    self-loops on every non-foreign class (no in-alphabet character can
    move or kill the run).  Mappings parked in such a state are in the
    output of every continuation of the stream over the compiled
    alphabet — the exactness argument behind ``emit="incremental"``.
    """
    sinks = []
    for state in range(compiled.num_states):
        if not (compiled.is_final[state] and compiled.silent[state]):
            continue
        row = compiled.class_table[state]
        # The trailing column is the all-dead foreign class; a sink only
        # needs to survive the declared alphabet.
        if all(target == state for target in row[:-1]):
            sinks.append(state)
    return frozenset(sinks)


class StreamedResult:
    """The ``emit="incremental"`` result: settled mappings plus a residue.

    ``settled`` holds the mappings that were flushed during the stream
    (in settlement order — the order mappings became certain, not the
    arena enumeration order); ``residual`` is the
    :class:`CompiledResultDag` of the runs that only resolved at
    :meth:`StreamingEvaluator.finish`.  Iteration yields the retained
    mappings (settled first), and :meth:`count` / :meth:`is_empty`
    mirror the arena result API.  Under ``retain_settled=False`` the
    ``settled`` list is empty — those mappings were delivered through
    ``feed()`` only — but ``settled_count`` still carries the true
    total, so :meth:`count` and :meth:`is_empty` stay exact; iteration
    then yields only the residual.
    """

    __slots__ = ("settled", "residual", "settled_count")

    def __init__(
        self,
        settled: list[Mapping],
        residual: CompiledResultDag,
        settled_count: int | None = None,
    ) -> None:
        self.settled = settled
        self.residual = residual
        self.settled_count = len(settled) if settled_count is None else settled_count

    @property
    def document_length(self) -> int:
        return self.residual.document_length

    def __iter__(self):
        yield from self.settled
        yield from self.residual

    def count(self) -> int:
        return self.settled_count + self.residual.count()

    def is_empty(self) -> bool:
        return not self.settled_count and self.residual.is_empty()

    def __repr__(self) -> str:
        return (
            f"StreamedResult(settled={self.settled_count}, "
            f"residual={self.residual!r})"
        )


class StreamingEvaluator:
    """Algorithm 1 fed one chunk at a time.

    Create one evaluator per document stream, :meth:`feed` it ``str`` or
    ``bytes`` chunks (in any mix — partial UTF-8 sequences are carried
    between byte chunks), then :meth:`finish` it exactly once.  Pass a
    reused :class:`~repro.runtime.engine.EvaluationScratch` when
    streaming many documents through the same automaton (the batch
    engine does); the slot arrays are returned cleared.
    """

    def __init__(
        self,
        compiled: CompiledEVA,
        *,
        emit: str = "on_finish",
        fast_path: bool = True,
        scratch: EvaluationScratch | None = None,
        retain_settled: bool = True,
    ) -> None:
        if not isinstance(compiled, CompiledEVA):
            raise StreamingError(
                "streaming needs the dense tables of a CompiledEVA "
                f"(got {type(compiled).__name__}); lazily determinized "
                "runtimes may discover rows mid-stream"
            )
        if emit not in EMIT_MODES:
            raise StreamingError(
                f"unknown emit mode {emit!r}; expected one of {EMIT_MODES}"
            )
        self._compiled = compiled
        self._emit = emit
        self._fast_path = fast_path
        self._scratch = _checked_scratch(compiled, scratch)
        self._classing = compiled.classing
        self._decoder = codecs.getincrementaldecoder("utf-8")()
        self._decoder_pending = False

        # Foreign-class probes for the incremental mode's alphabet guard.
        foreign = self._classing.foreign_class
        self._foreign_byte = foreign if foreign <= 0xFF else None
        self._foreign_id = foreign

        # The arena under construction (cell 0 is the initial list [⊥]).
        self._node_markers: list[int] = []
        self._node_positions: list[int] = []
        self._node_starts: list[int] = []
        self._node_ends: list[int] = []
        self._cell_nodes: list[int] = [NIL]
        self._cell_nexts: list[int] = [NIL]

        self._cur_start = self._scratch.cur_start
        self._cur_end = self._scratch.cur_end
        self._pend_start = self._scratch.pend_start
        self._pend_end = self._scratch.pend_end

        initial = compiled.initial
        self._cur_start[initial] = 0
        self._cur_end[initial] = 0
        self._active: list[int] = [initial]
        self._quiet = compiled.silent[initial]

        self._offset = 0
        self._finished = False
        self._failed = False

        self._sinks = settled_sinks(compiled) if emit == "incremental" else frozenset()
        # Settled mappings are always *returned* by feed(); whether they
        # are additionally kept for finish() to replay is the caller's
        # choice — an unbounded tail that consumes feed()'s return value
        # passes retain_settled=False so memory tracks the in-flight
        # state, not the total output.
        self._retain_settled = retain_settled
        self._settled: list[Mapping] = []
        self._settled_count = 0
        self._peak_cells = len(self._cell_nodes)
        self._cells_after_compact = len(self._cell_nodes)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def emit(self) -> str:
        """The output mode (``"on_finish"`` or ``"incremental"``)."""
        return self._emit

    @property
    def position(self) -> int:
        """How many characters have been consumed so far."""
        return self._offset

    @property
    def peak_arena_cells(self) -> int:
        """The largest buffered arena (in cells) observed so far.

        Sampled before every compaction, so it reports the memory that
        actually existed — the number the ``tailing-logs`` bounded-buffer
        property pins against the whole-document arena size.
        """
        return max(self._peak_cells, len(self._cell_nodes))

    def arena_cells(self) -> int:
        """The current buffered arena size in cells."""
        return len(self._cell_nodes)

    def settled_count(self) -> int:
        """How many mappings have been flushed as settled so far."""
        return self._settled_count

    def is_live(self) -> bool:
        """Whether any run (including a flushed settled sink) is still alive."""
        return bool(self._active) or bool(self._settled_count)

    # ------------------------------------------------------------------ #
    # Feeding
    # ------------------------------------------------------------------ #

    def feed(self, chunk: str | bytes | bytearray) -> list[Mapping]:
        """Consume one document chunk.

        Returns the mappings that became settled during this chunk
        (always empty under ``emit="on_finish"``).  ``bytes`` chunks may
        end mid-way through a UTF-8 sequence; the remainder is buffered
        and completed by the next chunk.
        """
        self._check_open("feed")
        if isinstance(chunk, (bytes, bytearray)):
            text = self._decoder.decode(bytes(chunk), False)
            self._decoder_pending = bool(self._decoder.getstate()[0])
        elif isinstance(chunk, str):
            if chunk and self._decoder_pending:
                self._fail(
                    "a str chunk arrived while a partial UTF-8 sequence "
                    "from an earlier bytes chunk is still pending"
                )
            text = chunk
        else:
            raise StreamingError(
                f"chunks must be str or bytes, got {type(chunk).__name__}"
            )
        if not text:
            return []
        encoded = self._classing.encode_fresh(text)
        if self._settled_count:
            self._guard_alphabet(encoded.buffer, len(text))
        if self._active:
            self._advance(encoded.buffer, encoded.length)
        self._offset += encoded.length
        if self._emit != "incremental":
            return []
        flushed = self._flush_settled()
        self._peak_cells = max(self._peak_cells, len(self._cell_nodes))
        cells = len(self._cell_nodes)
        if cells >= COMPACT_FLOOR_CELLS and cells >= 2 * self._cells_after_compact:
            self._compact()
        return flushed

    def finish(self) -> CompiledResultDag | StreamedResult:
        """Run the final capturing phase and return the result.

        ``emit="on_finish"`` returns the :class:`CompiledResultDag` the
        whole-document arena engine would have built; ``"incremental"``
        returns a :class:`StreamedResult` pairing the already-flushed
        mappings with the residual arena (with ``retain_settled=False``
        the ``settled`` list is empty — those mappings were delivered
        through :meth:`feed` only, see :meth:`settled_count`).  The
        borrowed scratch arrays are cleared for the next document.
        """
        self._check_open("finish")
        if self._decoder_pending:
            try:
                self._decoder.decode(b"", True)  # raises UnicodeDecodeError
            except UnicodeDecodeError as error:
                self._fail(f"stream ended inside a UTF-8 sequence: {error}")
        self._finished = True

        compiled = self._compiled
        cur_start = self._cur_start
        cur_end = self._cur_end
        # The final capturing phase at the stream's end position — the
        # same generated arena-capture fragment every whole-buffer kernel
        # inlines, run stand-alone because a resumable kernel never
        # finalizes (mutates the active list and arena in place).
        _final_capture(
            compiled,
            cur_start,
            cur_end,
            self._active,
            self._quiet,
            self._node_markers,
            self._node_positions,
            self._node_starts,
            self._node_ends,
            self._cell_nodes,
            self._cell_nexts,
            self._offset,
        )
        is_final = compiled.is_final
        final_entries = [
            (state, cur_start[state], cur_end[state])
            for state in self._active
            if is_final[state] and cur_start[state] != NIL
        ]
        self._peak_cells = max(self._peak_cells, len(self._cell_nodes))
        self._release_scratch()

        residual = CompiledResultDag(
            compiled,
            self._offset,
            self._node_markers,
            self._node_positions,
            self._node_starts,
            self._node_ends,
            self._cell_nodes,
            self._cell_nexts,
            final_entries,
        )
        if self._emit == "on_finish":
            return residual
        return StreamedResult(self._settled, residual, self._settled_count)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _check_open(self, operation: str) -> None:
        if self._finished:
            raise StreamingError(f"cannot {operation}: the stream was finished")
        if self._failed:
            raise StreamingError(
                f"cannot {operation}: the stream failed earlier and holds "
                "no consistent state"
            )

    def _release_scratch(self) -> None:
        """Deactivate every run and hand the slot arrays back clean.

        The one place the scratch-handoff invariant lives: both the
        normal :meth:`finish` path and the failure path go through it,
        so a borrowed :class:`EvaluationScratch` is always safe to reuse
        for the next document.
        """
        for state in self._active:
            self._cur_start[state] = NIL
        self._active = []
        self._scratch.cur_start = self._cur_start
        self._scratch.cur_end = self._cur_end
        self._scratch.pend_start = self._pend_start
        self._scratch.pend_end = self._pend_end

    def _fail(self, message: str) -> None:
        self._release_scratch()
        self._failed = True
        raise StreamingError(message)

    def _guard_alphabet(self, buf, length: int) -> None:
        """Reject a foreign character once mappings have been delivered.

        A foreign character kills every run — including the settled
        sinks whose mappings were already handed to the caller, which
        could never be retracted.  Until the first delivery the guard is
        off: a foreign character then simply kills every run, exactly
        the compiled engines' whole-document semantics (the total output
        is empty either way).
        """
        if isinstance(buf, bytes):
            if self._foreign_byte is None:
                return
            position = buf.find(self._foreign_byte)
        else:
            position = -1
            for index in range(length):
                if buf[index] == self._foreign_id:
                    position = index
                    break
        if position >= 0:
            self._fail(
                "character outside the declared alphabet at position "
                f"{self._offset + position}; incremental emission cannot "
                "retract already-delivered mappings — declare a larger "
                "alphabet or use emit='on_finish'"
            )

    def _advance(self, buf, n: int) -> None:
        """The resumable arena kernel over one chunk.

        ``pos`` is chunk-local; node positions add ``self._offset``.  All
        loop state (active set, slot pairs, ``quiet``) is threaded
        through the kernel call so the next chunk resumes exactly where
        this one stopped — including mid-sprint; the arena arrays are
        mutated in place.
        """
        (
            self._cur_start,
            self._cur_end,
            self._pend_start,
            self._pend_end,
            self._active,
            self._quiet,
        ) = _advance_kernel(
            self._compiled,
            buf,
            n,
            self._offset,
            self._cur_start,
            self._cur_end,
            self._pend_start,
            self._pend_end,
            self._active,
            self._quiet,
            self._node_markers,
            self._node_positions,
            self._node_starts,
            self._node_ends,
            self._cell_nodes,
            self._cell_nexts,
            self._fast_path,
        )

    def _flush_settled(self) -> list[Mapping]:
        """Move settled-sink mappings out of the arena (incremental mode).

        Each settled sink's current list is decoded into mappings — a
        bounded arena walk per mapping, the constant-delay step — and
        its head is cut so :meth:`finish` never re-emits them.  The sink
        leaves the active set; a later run merging into it through a
        reading phase re-activates it with a fresh list.
        """
        flushed: list[Mapping] = []
        cur_start = self._cur_start
        sinks = self._sinks
        hit = [state for state in self._active if state in sinks]
        if not hit:
            return flushed
        for state in hit:
            view = CompiledResultDag(
                self._compiled,
                self._offset,
                self._node_markers,
                self._node_positions,
                self._node_starts,
                self._node_ends,
                self._cell_nodes,
                self._cell_nexts,
                [(state, cur_start[state], self._cur_end[state])],
            )
            flushed.extend(view.mappings())
            cur_start[state] = NIL
        self._active = [state for state in self._active if state not in sinks]
        self._settled_count += len(flushed)
        if self._retain_settled:
            self._settled.extend(flushed)
        return flushed

    def _compact(self) -> None:
        """Rebuild the arena keeping only cells/nodes live runs can reach.

        Roots are the ``(start, end)`` lists of the active states.  Node
        ids are reassigned in ascending old order, preserving the
        children-before-parents invariant that the arena counting loop
        relies on.  Next pointers leaving the kept set are reset to
        ``NIL`` — they belonged to flushed or dead list views that no
        surviving ``(start, end)`` pair can traverse.
        """
        cell_nodes = self._cell_nodes
        cell_nexts = self._cell_nexts
        node_starts = self._node_starts
        node_ends = self._node_ends
        cur_start = self._cur_start
        cur_end = self._cur_end

        kept_cells: set[int] = set()
        kept_nodes: set[int] = set()
        node_stack: list[int] = []

        def mark_list(start: int, end: int) -> None:
            cell = start
            while cell != NIL:
                if cell not in kept_cells:
                    kept_cells.add(cell)
                node = cell_nodes[cell]
                if node != NIL and node not in kept_nodes:
                    kept_nodes.add(node)
                    node_stack.append(node)
                if cell == end:
                    break
                cell = cell_nexts[cell]

        for state in self._active:
            mark_list(cur_start[state], cur_end[state])
        while node_stack:
            node = node_stack.pop()
            mark_list(node_starts[node], node_ends[node])

        nodes_sorted = sorted(kept_nodes)
        cells_sorted = sorted(kept_cells)
        node_map = {old: new for new, old in enumerate(nodes_sorted)}
        cell_map = {old: new for new, old in enumerate(cells_sorted)}

        def remap_cell(cell: int) -> int:
            return cell_map.get(cell, NIL) if cell != NIL else NIL

        self._node_markers = [self._node_markers[old] for old in nodes_sorted]
        self._node_positions = [self._node_positions[old] for old in nodes_sorted]
        self._node_starts = [remap_cell(node_starts[old]) for old in nodes_sorted]
        self._node_ends = [remap_cell(node_ends[old]) for old in nodes_sorted]
        new_cell_nodes = []
        new_cell_nexts = []
        for old in cells_sorted:
            node = cell_nodes[old]
            new_cell_nodes.append(node_map[node] if node != NIL else NIL)
            new_cell_nexts.append(remap_cell(cell_nexts[old]))
        self._cell_nodes = new_cell_nodes
        self._cell_nexts = new_cell_nexts

        for state in self._active:
            cur_start[state] = remap_cell(cur_start[state])
            cur_end[state] = remap_cell(cur_end[state])
        self._cells_after_compact = max(1, len(new_cell_nodes))

    def __repr__(self) -> str:
        status = "finished" if self._finished else f"at {self._offset}"
        return (
            f"StreamingEvaluator(emit={self._emit!r}, {status}, "
            f"cells={len(self._cell_nodes)})"
        )


def evaluate_streaming(
    compiled: CompiledEVA,
    document: object,
    *,
    chunk_size: int = 65536,
    emit: str = "on_finish",
    scratch: EvaluationScratch | None = None,
    fast_path: bool = True,
) -> CompiledResultDag | StreamedResult:
    """Evaluate *document* by feeding it through a :class:`StreamingEvaluator`.

    The convenience driver used by ``run_batch(streaming=True)``: the
    document is consumed in *chunk_size*-character slices, so no
    whole-document class-id buffer is ever materialized (peak memory is
    one encoded chunk plus the live arena instead of ``O(|d|)``).
    """
    if chunk_size < 1:
        raise EvaluationError(f"chunk_size must be positive, got {chunk_size}")
    evaluator = StreamingEvaluator(
        compiled, emit=emit, scratch=scratch, fast_path=fast_path
    )
    chunks = getattr(document, "iter_chunks", None)
    if chunks is not None:
        for chunk in chunks(chunk_size):
            evaluator.feed(chunk)
    else:
        from repro.core.documents import as_text

        text = as_text(document)
        for begin in range(0, len(text), chunk_size):
            evaluator.feed(text[begin : begin + chunk_size])
    return evaluator.finish()
