"""Fault-tolerant execution of process-pool work: supervision, retries,
resource guards, quarantine, and a deterministic fault-injection harness.

Every process-pool surface of the repository (:func:`~repro.runtime.batch.run_batch`
in process mode, :func:`~repro.runtime.sharding.evaluate_sharded` /
:func:`~repro.runtime.sharding.count_sharded` over a
:class:`~repro.runtime.sharding.ShardPool`) routes its pool interaction
through this module, which upholds one contract — **exactness or a typed
error**:

* a run either produces results bit-identical to the serial engine, or
  raises a :class:`~repro.core.errors.ReproError` subclass (or records
  the affected documents in a :class:`FailureReport` when quarantine is
  on).  It never hangs and never silently drops documents.

The pieces, bottom up:

:func:`supervised_get`
    ``AsyncResult.get()`` bounded by a per-task deadline, polling so a
    dead worker is detected early (``multiprocessing.Pool`` respawns
    dead workers but the task they were running is simply lost — its
    consumer would otherwise block forever).  Raises
    :class:`~repro.core.errors.TaskDeadlineError` /
    :class:`~repro.core.errors.WorkerCrashError`.

:class:`RetryPolicy`
    Capped exponential backoff with deterministic, seedable jitter.
    Every task function in the repository is a pure function of its
    payload, so at-least-once resubmission is always safe.

:class:`ResourceBudget`
    Per-document guards: a character budget checked *before* evaluation
    and an arena-cell budget checked on the result a worker is about to
    return, both raising the typed
    :class:`~repro.core.errors.ResourceLimitError` instead of letting a
    worker be OOM-killed (which would surface as an opaque crash).

:class:`ResiliencePolicy` / :class:`FailureReport`
    The caller-facing knobs (deadline, retries, rebuild/fallback,
    quarantine, budget, fault plan) and the structured per-run record of
    everything that went wrong (quarantined documents plus counters).

:class:`SupervisedPool`
    A ``multiprocessing.Pool`` wrapper implementing the escalation
    ladder: retry with backoff → rebuild the pool once → demote to
    inline serial evaluation in the parent (results stay exact — the
    inline path runs the very same task functions — just slower).

:class:`FaultPlan`
    The deterministic fault-injection harness.  A plan is a list of
    :class:`FaultSpec` triggers (``kill`` the worker, ``raise``
    :class:`InjectedFault`, ``delay``) fired by arrival count at named
    sites (``"task"``, ``"evaluate"``, ``"encode"``, ``"shard-task"``).
    Arrival counters are per *process* — a pool worker accumulates
    arrivals across the tasks it handles, and a freshly (re)spawned
    worker starts from zero — which is what makes kill-and-recover
    scenarios expressible.  The hook is zero-overhead when disabled:
    call sites guard on ``resilience._ACTIVE_PLAN is not None`` (one
    module-attribute load and an identity test per document).

Process-wide counters land in :data:`RESILIENCE_METRICS` and surface
through ``ServerMetrics.snapshot()`` (the ``/metrics`` endpoint) and
``repro batch --report``.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.pool
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.errors import (
    EvaluationError,
    ReproError,
    ResourceLimitError,
    TaskDeadlineError,
    WorkerCrashError,
)

__all__ = [
    "DEFAULT_POLICY",
    "FAULT_ACTIONS",
    "FAULT_SITES",
    "FailureRecord",
    "FailureReport",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RESILIENCE_METRICS",
    "ResilienceMetrics",
    "ResiliencePolicy",
    "ResourceBudget",
    "RetryPolicy",
    "SupervisedPool",
    "clear_fault_plan",
    "install_fault_plan",
    "maybe_fault",
    "resilience_metrics_snapshot",
    "supervised_get",
]

#: How often a supervised ``get()`` wakes to look for dead workers while
#: a result is pending.  A ready result returns immediately regardless;
#: the poll only costs while genuinely waiting.
POLL_SECONDS = 0.1


# ---------------------------------------------------------------------- #
# Fault injection
# ---------------------------------------------------------------------- #

FAULT_SITES = ("task", "evaluate", "encode", "shard-task")
FAULT_ACTIONS = ("raise", "kill", "delay")

#: Exit status of a worker killed by a ``kill`` fault — distinctive on
#: purpose, so a chaos-test failure log tells an injected death from a
#: real segfault at a glance.
KILL_EXIT_STATUS = 70


class InjectedFault(RuntimeError):
    """The error a ``raise`` fault throws at its site.

    Deliberately *not* a :class:`~repro.core.errors.ReproError`: it
    models transient infrastructure failure, which the supervised
    executors must treat as retryable — library errors (deterministic,
    a retry cannot change the outcome) are exactly the ``ReproError``
    subtree.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One trigger: fire *action* on arrivals ``[nth, nth + count)`` at *site*.

    Arrivals are counted per process (see the module docstring), starting
    at 1.  ``count`` extends the trigger over consecutive arrivals; a
    large count means "every time from the nth on".
    """

    site: str
    action: str
    nth: int = 1
    count: int = 1
    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of {FAULT_SITES}"
            )
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {FAULT_ACTIONS}"
            )
        if self.nth < 1:
            raise ValueError(f"nth must be >= 1, got {self.nth}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


class FaultPlan:
    """A deterministic, picklable set of fault triggers.

    The plan crosses the process boundary through pool initializer
    arguments; each process owns its arrival counters, so a given worker
    sees a reproducible fault sequence as a function of the tasks it
    handled.  *seed* does not drive any randomness inside the plan
    (triggers are pure arrival counts — determinism is the point); it is
    carried so harness code can derive, say, jittered retry delays from
    the same number.
    """

    def __init__(self, specs: Sequence[FaultSpec], *, seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = seed
        self._arrivals: dict[str, int] = {}

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse ``[{"site": ..., "action": ..., ...}, ...]`` (the CLI flag).

        Raises :class:`ValueError` on malformed input, with a message
        naming the offending entry.
        """
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"--inject-faults is not valid JSON: {error}") from error
        if isinstance(raw, dict):
            raw = [raw]
        if not isinstance(raw, list):
            raise ValueError(
                "--inject-faults must be a JSON list of fault objects, "
                f"got {type(raw).__name__}"
            )
        specs = []
        for index, entry in enumerate(raw):
            if not isinstance(entry, dict):
                raise ValueError(
                    f"fault #{index} must be an object, got {type(entry).__name__}"
                )
            unknown = set(entry) - {"site", "action", "nth", "count", "seconds"}
            if unknown:
                raise ValueError(
                    f"fault #{index} has unknown keys {sorted(unknown)}"
                )
            try:
                specs.append(FaultSpec(**entry))
            except TypeError as error:
                raise ValueError(f"fault #{index}: {error}") from error
        return cls(specs)

    def arrivals(self, site: str) -> int:
        """How many times *site* has been reached in this process."""
        return self._arrivals.get(site, 0)

    def fire(self, site: str) -> None:
        """Record one arrival at *site* and trigger any matching spec."""
        n = self._arrivals.get(site, 0) + 1
        self._arrivals[site] = n
        for spec in self.specs:
            if spec.site == site and spec.nth <= n < spec.nth + spec.count:
                self._trigger(spec, site, n)

    @staticmethod
    def _trigger(spec: FaultSpec, site: str, arrival: int) -> None:
        if spec.action == "delay":
            time.sleep(spec.seconds)
        elif spec.action == "raise":
            raise InjectedFault(
                f"injected fault at site {site!r}, arrival {arrival}"
            )
        else:  # "kill": die the way a segfault or the OOM killer would —
            # no exception, no cleanup, the task simply never completes.
            os._exit(KILL_EXIT_STATUS)

    def __repr__(self) -> str:
        return f"FaultPlan({len(self.specs)} specs, seed={self.seed})"


#: The process-local active plan.  ``None`` (the overwhelmingly common
#: case) short-circuits every hook to one attribute load + identity test.
_ACTIVE_PLAN: FaultPlan | None = None


def install_fault_plan(plan: FaultPlan | None) -> None:
    """Activate *plan* in this process (workers do this in their initializer)."""
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = plan


def clear_fault_plan() -> None:
    """Deactivate fault injection in this process."""
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = None


def maybe_fault(site: str) -> None:
    """Fire the active plan at *site*, if any.

    Hot call sites should guard with ``if resilience._ACTIVE_PLAN is not
    None`` first so the disabled case costs no function call at all.
    """
    plan = _ACTIVE_PLAN
    if plan is not None:
        plan.fire(site)


# ---------------------------------------------------------------------- #
# Metrics (consumed by the server's /metrics endpoint and batch reports)
# ---------------------------------------------------------------------- #


class ResilienceMetrics:
    """Process-wide fault-tolerance counters.

    Lock-guarded like :class:`~repro.runtime.sharding.ShardMetrics`: the
    counters are written from supervision call sites on any thread and
    snapshotted by the server's ``/metrics`` endpoint.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tasks_retried = 0
        self._worker_crashes = 0
        self._deadlines_exceeded = 0
        self._pool_rebuilds = 0
        self._inline_fallbacks = 0
        self._documents_quarantined = 0
        self._resource_limit_trips = 0

    def task_retried(self) -> None:
        with self._lock:
            self._tasks_retried += 1

    def worker_crashed(self) -> None:
        with self._lock:
            self._worker_crashes += 1

    def deadline_exceeded(self) -> None:
        with self._lock:
            self._deadlines_exceeded += 1

    def pool_rebuilt(self) -> None:
        with self._lock:
            self._pool_rebuilds += 1

    def inline_fallback(self) -> None:
        with self._lock:
            self._inline_fallbacks += 1

    def document_quarantined(self) -> None:
        with self._lock:
            self._documents_quarantined += 1

    def resource_limit_tripped(self) -> None:
        with self._lock:
            self._resource_limit_trips += 1

    def reset(self) -> None:
        with self._lock:
            self._tasks_retried = 0
            self._worker_crashes = 0
            self._deadlines_exceeded = 0
            self._pool_rebuilds = 0
            self._inline_fallbacks = 0
            self._documents_quarantined = 0
            self._resource_limit_trips = 0

    def snapshot(self) -> dict[str, int]:
        """The JSON-ready counter block exposed under ``/metrics``."""
        with self._lock:
            return {
                "tasks_retried": self._tasks_retried,
                "worker_crashes": self._worker_crashes,
                "deadlines_exceeded": self._deadlines_exceeded,
                "pool_rebuilds": self._pool_rebuilds,
                "inline_fallbacks": self._inline_fallbacks,
                "documents_quarantined": self._documents_quarantined,
                "resource_limit_trips": self._resource_limit_trips,
            }


#: The process-wide metrics instance every supervised execution records to.
RESILIENCE_METRICS = ResilienceMetrics()


def resilience_metrics_snapshot() -> dict[str, int]:
    """The process-wide resilience counters (the server's ``/metrics`` block)."""
    return RESILIENCE_METRICS.snapshot()


# ---------------------------------------------------------------------- #
# Resource guards
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ResourceBudget:
    """Per-document limits enforced with a typed error, not an OOM kill.

    ``max_document_chars`` is checked *before* evaluation (admission: an
    outsized document never reaches an engine); ``max_arena_cells``
    bounds the result a worker is about to return — it is checked after
    evaluation but before the arena crosses the process boundary, so a
    runaway result is dropped in the worker instead of being pickled
    into the parent.  ``None`` disables the respective check.
    """

    max_document_chars: int | None = None
    max_arena_cells: int | None = None

    def __post_init__(self) -> None:
        for name in ("max_document_chars", "max_arena_cells"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be positive, got {value}")

    def check_document(self, document: object) -> None:
        """Raise :class:`ResourceLimitError` if *document* is over budget."""
        cap = self.max_document_chars
        if cap is not None:
            length = len(document)  # type: ignore[arg-type]
            if length > cap:
                RESILIENCE_METRICS.resource_limit_tripped()
                raise ResourceLimitError(
                    f"document of {length} characters exceeds the "
                    f"per-document budget of {cap}"
                )

    def check_result(self, result: object) -> None:
        """Raise :class:`ResourceLimitError` if an arena result is over budget.

        Results without a cell arena (hybrid mapping sets, reference
        object DAGs) pass — the guard targets the integer arenas whose
        cell lists dominate worker memory.
        """
        cap = self.max_arena_cells
        if cap is not None:
            cells = len(getattr(result, "cell_nodes", ()))
            if cells > cap:
                RESILIENCE_METRICS.resource_limit_tripped()
                raise ResourceLimitError(
                    f"result arena of {cells} list cells exceeds the "
                    f"per-document budget of {cap}"
                )


# ---------------------------------------------------------------------- #
# Retry policy and the caller-facing policy bundle
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic, seedable jitter.

    Attempt ``k`` (1-based) sleeps ``min(base_delay * 2**(k-1),
    max_delay)`` plus a jitter fraction of that, drawn from the
    caller-held RNG — pass ``seed`` so a run's delay sequence is
    reproducible (the chaos suite pins it).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay ({self.max_delay}) must be >= base_delay "
                f"({self.base_delay})"
            )
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def rng(self) -> random.Random:
        """A fresh RNG for one run's jitter draws (seeded when *seed* is)."""
        return random.Random(self.seed)

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Seconds to sleep before re-submitting after failed *attempt*."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(self.base_delay * (2 ** (attempt - 1)), self.max_delay)
        return base + base * self.jitter * rng.random()


@dataclass(frozen=True)
class ResiliencePolicy:
    """Everything a supervised execution needs to know about failure.

    The defaults supervise without changing healthy-run semantics: a
    generous deadline bounds hangs, crashes are retried and ultimately
    degraded to exact inline evaluation, and failures *raise* (typed)
    rather than quarantine.  Callers that prefer partial results over
    fail-fast (the CLI batch command) set ``quarantine=True`` and read
    the :class:`FailureReport`.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Seconds one pooled task may run before it is presumed lost;
    #: ``None`` disables the deadline (crash detection still applies).
    task_deadline: float | None = 300.0
    #: Rebuild a broken pool once before giving up on pooled execution.
    rebuild_pool: bool = True
    #: After the rebuild is spent, demote to inline serial evaluation
    #: (exact, just slower) instead of raising.
    fallback_inline: bool = True
    #: Record failing documents in the report and keep going, instead of
    #: raising on the first poison document.
    quarantine: bool = False
    budget: ResourceBudget | None = None
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise ValueError(
                f"task_deadline must be positive or None, got {self.task_deadline}"
            )


#: The policy supervised paths use when the caller passes none.
DEFAULT_POLICY = ResiliencePolicy()


# ---------------------------------------------------------------------- #
# The failure report (quarantine record + per-run counters)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class FailureRecord:
    """One quarantined document: identity, stage, and the typed reason."""

    doc_id: object
    #: Where it failed: ``"guard"`` (resource budget), ``"evaluate"``
    #: (the engine raised), or ``"pool"`` (crash/deadline exhausted every
    #: recovery layer).
    stage: str
    error_type: str
    message: str
    attempts: int = 1

    def as_dict(self) -> dict[str, object]:
        return {
            "doc_id": str(self.doc_id),
            "stage": self.stage,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
        }


class FailureReport:
    """The structured per-run failure record of one supervised execution.

    Collects the documents that were quarantined (with their typed
    errors) plus the recovery counters of the run — what
    ``repro batch --report`` prints and the chaos suite asserts on.
    Thread-safe: batch supervision runs in the caller's thread, but the
    report outlives the generator and may be read elsewhere.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[FailureRecord] = []
        self._tasks_retried = 0
        self._worker_crashes = 0
        self._deadlines_exceeded = 0
        self._pool_rebuilds = 0
        self._inline_fallbacks = 0

    # -- recording (mirrored into the process-wide metrics by callers) --

    def quarantine(
        self, doc_id: object, stage: str, error: BaseException, *, attempts: int = 1
    ) -> FailureRecord:
        record = FailureRecord(
            doc_id=doc_id,
            stage=stage,
            error_type=type(error).__name__,
            message=str(error),
            attempts=attempts,
        )
        with self._lock:
            self._records.append(record)
        RESILIENCE_METRICS.document_quarantined()
        return record

    def task_retried(self) -> None:
        with self._lock:
            self._tasks_retried += 1

    def worker_crashed(self) -> None:
        with self._lock:
            self._worker_crashes += 1

    def deadline_exceeded(self) -> None:
        with self._lock:
            self._deadlines_exceeded += 1

    def pool_rebuilt(self) -> None:
        with self._lock:
            self._pool_rebuilds += 1

    def inline_fallback(self) -> None:
        with self._lock:
            self._inline_fallbacks += 1

    # -- reading --

    @property
    def quarantined(self) -> tuple[FailureRecord, ...]:
        with self._lock:
            return tuple(self._records)

    @property
    def tasks_retried(self) -> int:
        with self._lock:
            return self._tasks_retried

    @property
    def pool_rebuilds(self) -> int:
        with self._lock:
            return self._pool_rebuilds

    @property
    def inline_fallbacks(self) -> int:
        with self._lock:
            return self._inline_fallbacks

    def as_dict(self) -> dict[str, object]:
        """The JSON-ready report (``repro batch --report`` prints this)."""
        with self._lock:
            return {
                "quarantined": [record.as_dict() for record in self._records],
                "counters": {
                    "tasks_retried": self._tasks_retried,
                    "worker_crashes": self._worker_crashes,
                    "deadlines_exceeded": self._deadlines_exceeded,
                    "pool_rebuilds": self._pool_rebuilds,
                    "inline_fallbacks": self._inline_fallbacks,
                    "documents_quarantined": len(self._records),
                },
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


# ---------------------------------------------------------------------- #
# Supervised result collection
# ---------------------------------------------------------------------- #


def _pids_of(raw_pool: multiprocessing.pool.Pool | None) -> frozenset[int]:
    """The live worker pids of a ``multiprocessing.Pool`` (best effort).

    Reads the pool's private worker list — stable across CPython 3.8+
    and the only way to notice a death early: the pool itself respawns
    dead workers without ever failing the task they were running.
    """
    if raw_pool is None:
        return frozenset()
    try:
        workers = list(raw_pool._pool)  # type: ignore[attr-defined]
    except Exception:
        return frozenset()
    return frozenset(worker.pid for worker in workers if worker.pid is not None)


def supervised_get(
    handle: Any,
    *,
    deadline: float | None,
    raw_pool: multiprocessing.pool.Pool | None = None,
    report: FailureReport | None = None,
    poll: float = POLL_SECONDS,
) -> Any:
    """``handle.get()`` bounded by *deadline* and watched for worker deaths.

    Returns the task's result, re-raises whatever the task raised in the
    worker, and converts the two lost-task shapes into typed errors:
    :class:`WorkerCrashError` when the pool's worker set changed while
    waiting (a worker died — if it was ours, the task is lost; if not,
    resubmission merely duplicates a pure computation), and
    :class:`TaskDeadlineError` when *deadline* elapsed.
    """
    end = None if deadline is None else time.monotonic() + deadline
    known = _pids_of(raw_pool)
    while True:
        try:
            return handle.get(poll)
        except multiprocessing.TimeoutError:
            current = _pids_of(raw_pool)
            if known and current != known:
                RESILIENCE_METRICS.worker_crashed()
                if report is not None:
                    report.worker_crashed()
                raise WorkerCrashError(
                    "a pool worker died while the task was pending "
                    f"(workers now {sorted(current)}, were {sorted(known)})"
                ) from None
            if end is not None and time.monotonic() >= end:
                RESILIENCE_METRICS.deadline_exceeded()
                if report is not None:
                    report.deadline_exceeded()
                raise TaskDeadlineError(
                    f"pooled task missed its {deadline:g}s deadline"
                ) from None


class SupervisedPool:
    """A worker pool with the full escalation ladder wired in.

    ``submit()`` returns a task token; ``collect()`` blocks on it under
    supervision, resubmitting on crash/deadline with backoff, rebuilding
    the pool once, and finally demoting the whole run to inline serial
    evaluation — at which point every remaining task runs exactly in the
    parent process.  Deterministic library errors (the ``ReproError``
    subtree) are never retried: the same input fails the same way every
    time, so they propagate (or quarantine) immediately.

    *initargs* initialize workers (and may carry a fault plan);
    *inline_initargs* initialize the parent for inline runs and must
    **not** carry the fault plan — the inline path is the exactness
    backstop.  *inline_setup* applies them and returns a teardown
    callable restoring whatever worker globals it clobbered.
    """

    def __init__(
        self,
        workers: int,
        *,
        initializer: Callable[..., None],
        initargs: tuple,
        inline_setup: Callable[[], Callable[[], None]],
        policy: ResiliencePolicy | None = None,
        report: FailureReport | None = None,
        context: multiprocessing.context.BaseContext | None = None,
    ) -> None:
        if workers < 1:
            raise EvaluationError(f"worker count must be positive, got {workers}")
        self.workers = workers
        self._initializer = initializer
        self._initargs = initargs
        self._inline_setup = inline_setup
        self._policy = policy if policy is not None else DEFAULT_POLICY
        self._report = report
        self._context = context if context is not None else multiprocessing.get_context()
        self._rng = self._policy.retry.rng()
        self._generation = 0
        self._rebuilt = False
        self._inline = False
        # Handles lost to a crash/deadline and resubmitted: the original
        # jobs stay in the pool's internal result cache forever (CPython
        # never fails the task of a dead worker), so a graceful
        # close()+join() would block on the cache draining.  close()
        # falls back to terminate() when any exist.
        self._abandoned = 0
        self._pool: multiprocessing.pool.Pool | None = self._start()

    def _start(self) -> multiprocessing.pool.Pool:
        return self._context.Pool(
            processes=self.workers,
            initializer=self._initializer,
            initargs=self._initargs,
        )

    @property
    def raw_pool(self) -> multiprocessing.pool.Pool:
        """The underlying pool (``sharding.adapt_pool`` wraps this)."""
        assert self._pool is not None, "pool used after close()"
        return self._pool

    @property
    def demoted(self) -> bool:
        """Whether the run has degraded to inline serial evaluation."""
        return self._inline

    class _Task:
        __slots__ = ("fn", "payload", "handle", "generation", "attempts")

        def __init__(self, fn, payload, handle, generation):
            self.fn = fn
            self.payload = payload
            self.handle = handle
            self.generation = generation
            self.attempts = 0

    def submit(self, fn: Callable[[Any], Any], payload: Any) -> "SupervisedPool._Task":
        """Dispatch one task; pair with :meth:`collect`."""
        if self._inline or self._pool is None:
            # Demoted (or closed mid-iteration): collect() runs it inline.
            return self._Task(fn, payload, None, -1)
        return self._Task(
            fn, payload, self._pool.apply_async(fn, (payload,)), self._generation
        )

    def run_inline(self, fn: Callable[[Any], Any], payload: Any) -> Any:
        """Run one task in the parent, exactly as a worker would have."""
        teardown = self._inline_setup()
        try:
            return fn(payload)
        finally:
            teardown()

    def collect(self, task: "SupervisedPool._Task") -> Any:
        """Wait for *task*, escalating through retry → rebuild → inline.

        Raises what the task deterministically raises (``ReproError``),
        or — with the fallback disabled — the final
        :class:`WorkerCrashError` / :class:`TaskDeadlineError`.
        """
        policy = self._policy
        retry = policy.retry
        while True:
            if self._inline or self._pool is None:
                return self.run_inline(task.fn, task.payload)
            if task.generation != self._generation or task.handle is None:
                self._resubmit(task)
            try:
                return supervised_get(
                    task.handle,
                    deadline=policy.task_deadline,
                    raw_pool=self._pool,
                    report=self._report,
                )
            except WorkerCrashError as crash:
                self._abandoned += 1  # the old handle will never resolve
                task.attempts += 1
                if task.attempts < retry.max_attempts:
                    self._note_retry(task)
                    continue
                if policy.rebuild_pool and not self._rebuilt:
                    self._rebuild()
                    task.attempts = 0
                    continue
                if policy.fallback_inline:
                    self._demote()
                    continue
                raise crash
            except ReproError:
                raise  # deterministic: a retry cannot change the outcome
            except Exception:
                # Raised *inside* the worker — unexpected, presumed
                # transient (the injected-fault harness lands here too).
                task.attempts += 1
                if task.attempts < retry.max_attempts:
                    self._note_retry(task)
                    continue
                if policy.fallback_inline:
                    # The pool itself is healthy (the worker answered);
                    # isolate this task inline and let a genuinely
                    # deterministic error propagate from there.
                    RESILIENCE_METRICS.inline_fallback()
                    if self._report is not None:
                        self._report.inline_fallback()
                    return self.run_inline(task.fn, task.payload)
                raise

    def _note_retry(self, task: "SupervisedPool._Task") -> None:
        RESILIENCE_METRICS.task_retried()
        if self._report is not None:
            self._report.task_retried()
        delay = self._policy.retry.delay(task.attempts, self._rng)
        if delay > 0:
            time.sleep(delay)
        self._resubmit(task)

    def _resubmit(self, task: "SupervisedPool._Task") -> None:
        assert self._pool is not None
        task.handle = self._pool.apply_async(task.fn, (task.payload,))
        task.generation = self._generation

    def _rebuild(self) -> None:
        RESILIENCE_METRICS.pool_rebuilt()
        if self._report is not None:
            self._report.pool_rebuilt()
        old = self._pool
        self._rebuilt = True
        self._generation += 1
        if old is not None:
            old.terminate()
            old.join()
        self._abandoned = 0  # the fresh pool's result cache starts clean
        self._pool = self._start()  # OSError here propagates: cannot start

    def _demote(self) -> None:
        RESILIENCE_METRICS.inline_fallback()
        if self._report is not None:
            self._report.inline_fallback()
        self._inline = True
        old = self._pool
        self._pool = None
        if old is not None:
            old.terminate()
            old.join()

    def close(self) -> None:
        """Graceful shutdown for the clean-completion path.

        With crash-abandoned handles outstanding, ``close()+join()``
        would wait forever on jobs whose workers are gone (their cache
        entries never drain), so the shutdown downgrades to a terminate
        — every wanted result has been collected by the time this runs.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            if self._abandoned:
                pool.terminate()
            else:
                pool.close()
            pool.join()

    def terminate(self) -> None:
        """Hard shutdown for error paths (in-flight tasks are abandoned)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
