"""The execution planner: choosing how a spanner gets evaluated.

Every evaluation entry point of the library (the
:class:`~repro.spanners.Spanner` facade, the batch engine and the CLI)
funnels through an :class:`ExecutionPlan` that names the concrete engine to
run:

``compiled``
    Determinize up front, intern into a
    :class:`~repro.runtime.compiled.CompiledEVA` and run the dense-table
    arena engine.  Best when the deterministic automaton is small or reused
    across many documents: the (possibly exponential) determinization is
    paid once and the per-character cost is the lowest of all engines.

``compiled-otf``
    Skip determinization; evaluate through the lazily determinized
    :class:`~repro.runtime.subset.CompiledSubsetEVA` (the paper's Section 4
    closing remark).  Best when up-front subset construction threatens to
    blow up: only subsets actually reached by some document are ever built,
    at the price of a higher per-character constant.

``reference``
    The original dict-and-object Algorithm 1 — kept as the paper-faithful
    baseline that the property suite cross-checks the compiled engines
    against.

``hybrid``
    For spanner-algebra expressions only: the cost-based optimizer
    (:mod:`repro.algebra.optimizer`) cut the expression tree, and the plan
    carries a physical operator tree (:mod:`repro.runtime.operators`)
    whose fused leaves each run their own compiled engine while join /
    union / projection cut edges execute on the result arenas.

Plans additionally carry a ``streaming`` flag: a streaming plan feeds
documents chunk by chunk through
:class:`~repro.runtime.streaming.StreamingEvaluator` instead of handing a
whole document to an engine.  Streaming always runs ``compiled`` — see
:func:`choose_plan`.

The module also hosts :class:`PlanCache` — the shared, size-bounded,
thread-safe LRU over compilation artifacts.  It generalizes what used to
be a private ``OrderedDict`` inside the :class:`~repro.spanners.Spanner`
facade: the facade keeps one per-instance cache of per-alphabet
compilation states, while the server front-end
(:mod:`repro.server`) keeps one *shared* cache of pattern→compiled-plan
entries across every connection.  Both report hit/miss/eviction counters
through :meth:`PlanCache.stats`, which is what the server's ``/metrics``
endpoint exposes as the plan-cache hit ratio.

:func:`choose_plan` implements the ``auto`` policy from an automaton's
:class:`~repro.automata.analysis.AutomatonStatistics` (measured on the
*sequential*, pre-determinization automaton): already-deterministic inputs
compile directly; small non-deterministic ones determinize up front because
the subset construction is provably bounded by ``2^states`` and cheap to
amortize; large non-deterministic ones switch to on-the-fly evaluation.

Whatever engine a plan names, the document reaches it as an *object*, not
a pre-translated id list: every compiled engine (and every fused leaf of a
``hybrid`` plan) pulls the shared class-id buffer of
:mod:`repro.runtime.encoding` from the document's own cache, so one
encoding pass per alphabet-classing signature serves the whole plan — the
planner never has to trade engines against re-translation cost.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, TypeVar

from repro.automata.analysis import AutomatonStatistics
from repro.runtime.kernel import KERNELS

__all__ = [
    "ENGINE_CHOICES",
    "KERNEL_CHOICES",
    "CacheStats",
    "ExecutionPlan",
    "PlanCache",
    "choose_plan",
]

#: Engine names accepted by the facade and the CLI; ``auto`` resolves to a
#: concrete engine through :func:`choose_plan`.  ``hybrid`` is only
#: meaningful for spanner-algebra expression sources (elsewhere the facade
#: treats it as ``auto``).
ENGINE_CHOICES = ("auto", "compiled", "compiled-otf", "reference", "hybrid")

#: Inner-loop kernel names accepted by the facade and the CLI.  The axis
#: is orthogonal to the engine choice: ``scalar`` is the per-character
#: fold with the quiescent sprint, ``runlength`` evaluates the run-length
#: encoded class buffer with per-class matrix powers
#: (:mod:`repro.runtime.runlength`), and ``auto`` picks per document from
#: its measured run-length statistics.  Unlike ``engine``, a plan may
#: carry ``kernel="auto"``: the decision is inherently per-document
#: (mean run length is a document property, not an automaton property).
#: The tuple is defined once, in :mod:`repro.runtime.kernel` (the module
#: that owns the kernel axis of the spec), and re-exported here and as
#: ``repro.runtime.runlength.KERNELS`` — the three names can no longer
#: drift, and a unit test still pins them equal.
KERNEL_CHOICES = KERNELS

#: Above this many sequential-automaton states, ``auto`` refuses to
#: determinize a non-deterministic automaton up front: the subset
#: construction may build up to ``2^states`` subsets, while on-the-fly
#: evaluation only ever interns the reachable ones.
DEFAULT_OTF_STATE_THRESHOLD = 24


@dataclass(frozen=True)
class ExecutionPlan:
    """A resolved evaluation strategy.

    ``engine`` is always concrete (never ``"auto"``);
    ``determinize_upfront`` says whether the compilation pipeline runs
    :func:`~repro.automata.transforms.determinize` before evaluation, and
    ``reason`` records the planner's justification for logs and tests.
    ``operators`` is the physical operator tree of a ``hybrid`` plan
    (a prepared :class:`~repro.runtime.operators.PhysicalOperator`), and
    ``None`` for the monolithic single-automaton engines.
    """

    engine: str
    determinize_upfront: bool
    reason: str
    operators: object | None = None
    streaming: bool = False
    shard_workers: int = 1
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_CHOICES or self.engine == "auto":
            raise ValueError(
                f"an ExecutionPlan needs a concrete engine, got {self.engine!r}"
            )
        if self.kernel not in KERNEL_CHOICES:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; expected one of "
                f"{KERNEL_CHOICES}"
            )
        if self.kernel == "runlength" and self.engine not in (
            "compiled",
            "compiled-otf",
        ):
            raise ValueError(
                f"engine {self.engine!r} has no run-length kernel; "
                "kernel='runlength' needs the dense or lazily determinized "
                "class tables (engine='compiled' or 'compiled-otf')"
            )
        if self.kernel == "runlength" and self.streaming:
            raise ValueError(
                "a streaming plan cannot force kernel='runlength': chunk-fed "
                "evaluation never sees the whole run-length encoding"
            )
        if self.engine == "hybrid" and self.operators is None:
            raise ValueError(
                "a hybrid ExecutionPlan carries its physical operator tree; "
                "build one through the optimizer (repro.algebra.optimizer)"
            )
        if self.engine != "hybrid" and self.operators is not None:
            raise ValueError(
                f"engine {self.engine!r} does not execute a physical operator tree"
            )
        if self.streaming and self.engine != "compiled":
            raise ValueError(
                f"engine {self.engine!r} cannot evaluate chunk-fed documents; "
                "streaming plans run the dense-table compiled engine"
            )
        if self.shard_workers < 1:
            raise ValueError(
                f"shard_workers must be positive, got {self.shard_workers}"
            )
        if self.shard_workers > 1 and self.engine != "compiled":
            raise ValueError(
                f"engine {self.engine!r} cannot shard a document across "
                "workers; shard-parallel plans run the dense-table compiled "
                "engine (its transition summaries need the full class table)"
            )
        if self.shard_workers > 1 and self.streaming:
            raise ValueError(
                "a plan cannot both stream and shard: sharding needs the "
                "whole class-id buffer up front to split it"
            )


def choose_plan(
    stats: AutomatonStatistics | None = None,
    *,
    engine: str = "auto",
    otf_state_threshold: int = DEFAULT_OTF_STATE_THRESHOLD,
    streaming: bool = False,
    shard_workers: int = 1,
    kernel: str = "auto",
) -> ExecutionPlan:
    """Resolve *engine* into an :class:`ExecutionPlan`.

    *stats* must describe the **sequential** (pre-determinization)
    automaton and carry its ``deterministic`` flag; it is only consulted
    (and only required) when *engine* is ``"auto"``.  A concrete *engine*
    is honoured as-is.

    *kernel* rides along unresolved unless it is invalid for the engine
    the plan lands on: the ``auto`` kernel is resolved per document at
    evaluation time (``repro.runtime.runlength.prefers_runlength`` keys
    on the measured mean run length of the encoded buffer — automaton
    statistics cannot see it), so the plan records the caller's intent
    and the engines dispatch.  A streaming plan pins ``kernel="scalar"``
    because chunk-fed evaluation never sees whole runs.

    With ``streaming=True`` the plan evaluates chunk-fed documents
    through :class:`~repro.runtime.streaming.StreamingEvaluator`.  Only
    the dense-table ``compiled`` engine can stream: the settled-sink
    analysis behind incremental emission needs the full class table up
    front, which a lazily determinized runtime discovers only as
    documents drive it.  ``auto`` therefore resolves to ``compiled``
    without consulting *stats*, and any other engine is rejected.

    With ``shard_workers > 1`` the plan splits each sufficiently large
    document into shards evaluated in parallel
    (:mod:`repro.runtime.sharding`).  Sharding needs the dense class
    table to summarize shards from every possible entry state, so only
    ``compiled`` (or ``auto``, which then resolves to it) qualifies; the
    size threshold keeping small documents on the serial path is applied
    per document at evaluation time, not here.
    """
    if engine not in ENGINE_CHOICES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINE_CHOICES}"
        )
    if kernel not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {KERNEL_CHOICES}"
        )
    if shard_workers < 1:
        raise ValueError(f"shard_workers must be positive, got {shard_workers}")
    if shard_workers > 1:
        if streaming:
            raise ValueError(
                "a plan cannot both stream and shard: sharding needs the "
                "whole class-id buffer up front to split it"
            )
        if engine not in ("auto", "compiled"):
            raise ValueError(
                f"engine {engine!r} cannot shard a document across workers; "
                "shard-parallel evaluation supports engine='compiled' (or "
                "'auto')"
            )
        return ExecutionPlan(
            "compiled",
            True,
            f"shard-parallel across {shard_workers} workers: transition "
            "summaries need the dense tables up front (documents below the "
            "size threshold still run the serial arena engine)",
            shard_workers=shard_workers,
            kernel=kernel,
        )
    if streaming:
        if engine not in ("auto", "compiled"):
            raise ValueError(
                f"engine {engine!r} cannot evaluate chunk-fed documents; "
                "streaming supports engine='compiled' (or 'auto')"
            )
        if kernel == "runlength":
            raise ValueError(
                "streaming cannot force kernel='runlength': chunk-fed "
                "evaluation never sees the whole run-length encoding"
            )
        return ExecutionPlan(
            "compiled",
            True,
            "streaming: chunk-fed evaluation needs the dense tables "
            "(and their settled-sink analysis) up front",
            streaming=True,
            kernel="scalar",
        )
    if engine == "hybrid":
        raise ValueError(
            "hybrid plans are produced by the expression optimizer "
            "(repro.algebra.optimizer.optimize), not by choose_plan"
        )
    if engine == "reference":
        return ExecutionPlan("reference", True, "forced by caller", kernel=kernel)
    if engine == "compiled":
        return ExecutionPlan("compiled", True, "forced by caller", kernel=kernel)
    if engine == "compiled-otf":
        return ExecutionPlan(
            "compiled-otf", False, "forced by caller", kernel=kernel
        )

    if stats is None:
        raise ValueError("engine='auto' needs the sequential automaton's statistics")
    if stats.deterministic:
        return ExecutionPlan(
            "compiled",
            True,
            "already deterministic: dense tables at no extra cost",
            kernel=kernel,
        )
    if stats.num_states > otf_state_threshold:
        return ExecutionPlan(
            "compiled-otf",
            False,
            f"non-deterministic with {stats.num_states} states "
            f"(> {otf_state_threshold}): up-front subset construction may "
            "be exponential, determinize on the fly",
            kernel=kernel,
        )
    return ExecutionPlan(
        "compiled",
        True,
        f"non-deterministic but small ({stats.num_states} states "
        f"<= {otf_state_threshold}): determinize once, reuse dense tables",
        kernel=kernel,
    )


# ---------------------------------------------------------------------- #
# The shared compilation-artifact cache
# ---------------------------------------------------------------------- #

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of a :class:`PlanCache`'s counters.

    ``hits``/``misses`` count :meth:`PlanCache.get_or_create` (and
    :meth:`PlanCache.get`) lookups since construction (or the last
    :meth:`PlanCache.reset_stats`), ``evictions`` counts entries dropped
    by the LRU bound, and ``entries``/``max_entries`` describe the
    current occupancy.  ``hit_ratio`` is what the server's ``/metrics``
    endpoint reports.  ``build_failures`` counts factories that raised
    out of :meth:`PlanCache.get_or_create` — a growing number flags
    clients repeatedly submitting patterns that fail to compile.
    """

    hits: int
    misses: int
    evictions: int
    entries: int
    max_entries: int
    build_failures: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        """The JSON-ready form used by ``/metrics``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "max_entries": self.max_entries,
            "build_failures": self.build_failures,
            "hit_ratio": round(self.hit_ratio, 6),
        }


class PlanCache(Generic[K, V]):
    """A size-bounded, thread-safe LRU over compilation artifacts.

    Values are built at most once per resident key through
    :meth:`get_or_create` (the factory runs under the cache lock, so two
    racing callers never compile the same entry twice), refreshed on
    every hit, and dropped — oldest first — once the bound is exceeded.
    Eviction only severs the cache's reference: callers that already
    hold an entry (an in-flight server session feeding its evaluator, a
    borrowed scratch) keep a perfectly valid object; the next lookup for
    that key simply rebuilds a fresh one.  That invariant is what lets
    the multi-tenant server evict under pressure without corrupting
    open sessions, and it is pinned by the integration tests.
    """

    def __init__(self, max_entries: int, *, name: str = "plan-cache") -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.name = name
        self._max_entries = max_entries
        self._entries: OrderedDict[K, V] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._build_failures = 0

    @property
    def max_entries(self) -> int:
        return self._max_entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[K]:
        """The resident keys, oldest (next eviction victim) first."""
        with self._lock:
            return list(self._entries)

    def get(self, key: K) -> V | None:
        """Return the entry for *key* (refreshing recency) or ``None``."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._hits += 1
            self._entries.move_to_end(key)
            return value

    def get_or_create(self, key: K, factory: Callable[[], V]) -> V:
        """Return the entry for *key*, building it via *factory* on a miss.

        The factory runs under the cache lock: a compilation is never
        duplicated, at the price of serializing concurrent misses —
        the right trade for compilation artifacts, which are expensive
        to build and cheap to share.
        """
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return value
            self._misses += 1
            try:
                value = factory()
            except BaseException:
                # A failed build leaves no entry behind; count it so the
                # server's /metrics can surface repeated bad patterns.
                self._build_failures += 1
                raise
            self._entries[key] = value
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
            return value

    def clear(self) -> None:
        """Drop every entry (counters are kept; see :meth:`reset_stats`)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._build_failures = 0

    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters and occupancy."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                max_entries=self._max_entries,
                build_failures=self._build_failures,
            )

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"PlanCache({self.name!r}, entries={stats.entries}/"
            f"{stats.max_entries}, hits={stats.hits}, misses={stats.misses}, "
            f"evictions={stats.evictions})"
        )
