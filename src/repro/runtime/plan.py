"""The execution planner: choosing how a spanner gets evaluated.

Every evaluation entry point of the library (the
:class:`~repro.spanners.Spanner` facade, the batch engine and the CLI)
funnels through an :class:`ExecutionPlan` that names the concrete engine to
run:

``compiled``
    Determinize up front, intern into a
    :class:`~repro.runtime.compiled.CompiledEVA` and run the dense-table
    arena engine.  Best when the deterministic automaton is small or reused
    across many documents: the (possibly exponential) determinization is
    paid once and the per-character cost is the lowest of all engines.

``compiled-otf``
    Skip determinization; evaluate through the lazily determinized
    :class:`~repro.runtime.subset.CompiledSubsetEVA` (the paper's Section 4
    closing remark).  Best when up-front subset construction threatens to
    blow up: only subsets actually reached by some document are ever built,
    at the price of a higher per-character constant.

``reference``
    The original dict-and-object Algorithm 1 — kept as the paper-faithful
    baseline that the property suite cross-checks the compiled engines
    against.

``hybrid``
    For spanner-algebra expressions only: the cost-based optimizer
    (:mod:`repro.algebra.optimizer`) cut the expression tree, and the plan
    carries a physical operator tree (:mod:`repro.runtime.operators`)
    whose fused leaves each run their own compiled engine while join /
    union / projection cut edges execute on the result arenas.

Plans additionally carry a ``streaming`` flag: a streaming plan feeds
documents chunk by chunk through
:class:`~repro.runtime.streaming.StreamingEvaluator` instead of handing a
whole document to an engine.  Streaming always runs ``compiled`` — see
:func:`choose_plan`.

:func:`choose_plan` implements the ``auto`` policy from an automaton's
:class:`~repro.automata.analysis.AutomatonStatistics` (measured on the
*sequential*, pre-determinization automaton): already-deterministic inputs
compile directly; small non-deterministic ones determinize up front because
the subset construction is provably bounded by ``2^states`` and cheap to
amortize; large non-deterministic ones switch to on-the-fly evaluation.

Whatever engine a plan names, the document reaches it as an *object*, not
a pre-translated id list: every compiled engine (and every fused leaf of a
``hybrid`` plan) pulls the shared class-id buffer of
:mod:`repro.runtime.encoding` from the document's own cache, so one
encoding pass per alphabet-classing signature serves the whole plan — the
planner never has to trade engines against re-translation cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.analysis import AutomatonStatistics

__all__ = ["ENGINE_CHOICES", "ExecutionPlan", "choose_plan"]

#: Engine names accepted by the facade and the CLI; ``auto`` resolves to a
#: concrete engine through :func:`choose_plan`.  ``hybrid`` is only
#: meaningful for spanner-algebra expression sources (elsewhere the facade
#: treats it as ``auto``).
ENGINE_CHOICES = ("auto", "compiled", "compiled-otf", "reference", "hybrid")

#: Above this many sequential-automaton states, ``auto`` refuses to
#: determinize a non-deterministic automaton up front: the subset
#: construction may build up to ``2^states`` subsets, while on-the-fly
#: evaluation only ever interns the reachable ones.
DEFAULT_OTF_STATE_THRESHOLD = 24


@dataclass(frozen=True)
class ExecutionPlan:
    """A resolved evaluation strategy.

    ``engine`` is always concrete (never ``"auto"``);
    ``determinize_upfront`` says whether the compilation pipeline runs
    :func:`~repro.automata.transforms.determinize` before evaluation, and
    ``reason`` records the planner's justification for logs and tests.
    ``operators`` is the physical operator tree of a ``hybrid`` plan
    (a prepared :class:`~repro.runtime.operators.PhysicalOperator`), and
    ``None`` for the monolithic single-automaton engines.
    """

    engine: str
    determinize_upfront: bool
    reason: str
    operators: object | None = None
    streaming: bool = False

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_CHOICES or self.engine == "auto":
            raise ValueError(
                f"an ExecutionPlan needs a concrete engine, got {self.engine!r}"
            )
        if self.engine == "hybrid" and self.operators is None:
            raise ValueError(
                "a hybrid ExecutionPlan carries its physical operator tree; "
                "build one through the optimizer (repro.algebra.optimizer)"
            )
        if self.engine != "hybrid" and self.operators is not None:
            raise ValueError(
                f"engine {self.engine!r} does not execute a physical operator tree"
            )
        if self.streaming and self.engine != "compiled":
            raise ValueError(
                f"engine {self.engine!r} cannot evaluate chunk-fed documents; "
                "streaming plans run the dense-table compiled engine"
            )


def choose_plan(
    stats: AutomatonStatistics | None = None,
    *,
    engine: str = "auto",
    otf_state_threshold: int = DEFAULT_OTF_STATE_THRESHOLD,
    streaming: bool = False,
) -> ExecutionPlan:
    """Resolve *engine* into an :class:`ExecutionPlan`.

    *stats* must describe the **sequential** (pre-determinization)
    automaton and carry its ``deterministic`` flag; it is only consulted
    (and only required) when *engine* is ``"auto"``.  A concrete *engine*
    is honoured as-is.

    With ``streaming=True`` the plan evaluates chunk-fed documents
    through :class:`~repro.runtime.streaming.StreamingEvaluator`.  Only
    the dense-table ``compiled`` engine can stream: the settled-sink
    analysis behind incremental emission needs the full class table up
    front, which a lazily determinized runtime discovers only as
    documents drive it.  ``auto`` therefore resolves to ``compiled``
    without consulting *stats*, and any other engine is rejected.
    """
    if engine not in ENGINE_CHOICES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINE_CHOICES}"
        )
    if streaming:
        if engine not in ("auto", "compiled"):
            raise ValueError(
                f"engine {engine!r} cannot evaluate chunk-fed documents; "
                "streaming supports engine='compiled' (or 'auto')"
            )
        return ExecutionPlan(
            "compiled",
            True,
            "streaming: chunk-fed evaluation needs the dense tables "
            "(and their settled-sink analysis) up front",
            streaming=True,
        )
    if engine == "hybrid":
        raise ValueError(
            "hybrid plans are produced by the expression optimizer "
            "(repro.algebra.optimizer.optimize), not by choose_plan"
        )
    if engine == "reference":
        return ExecutionPlan("reference", True, "forced by caller")
    if engine == "compiled":
        return ExecutionPlan("compiled", True, "forced by caller")
    if engine == "compiled-otf":
        return ExecutionPlan("compiled-otf", False, "forced by caller")

    if stats is None:
        raise ValueError("engine='auto' needs the sequential automaton's statistics")
    if stats.deterministic:
        return ExecutionPlan(
            "compiled", True, "already deterministic: dense tables at no extra cost"
        )
    if stats.num_states > otf_state_threshold:
        return ExecutionPlan(
            "compiled-otf",
            False,
            f"non-deterministic with {stats.num_states} states "
            f"(> {otf_state_threshold}): up-front subset construction may "
            "be exponential, determinize on the fly",
        )
    return ExecutionPlan(
        "compiled",
        True,
        f"non-deterministic but small ({stats.num_states} states "
        f"<= {otf_state_threshold}): determinize once, reuse dense tables",
    )
