"""Shard-parallel evaluation of one document via transition summaries.

Every other engine in the repository walks a document left to right on a
single core; :func:`run_batch` only parallelizes *across* documents.  This
module parallelizes *within* one document using the classic
parallel-pattern-matching decomposition:

1. **Shard** the encoded class-id buffer into near-equal slices
   (:func:`plan_shards`).  The buffer stores one class id per *codepoint*
   (:mod:`repro.runtime.encoding`), so every slice boundary is a codepoint
   boundary by construction — a multi-byte character can never be split.

2. **Summarize** each shard with a cheap capture-free pass
   (:func:`shard_summary`): for every possible entry state, the frontier
   of live states at the shard's end.  Frontier evolution is per-state
   (reading moves each state through its letter transition, capturing adds
   each state's variable targets), so the frontier reached from a *set* of
   entry states is exactly the union of the frontiers reached from each
   state alone — which is why per-entry-state summaries compose
   (:func:`compose_summaries`) and can be computed for all shards
   concurrently, before anyone knows which entry states are real.

3. **Stitch** the summaries left to right: the first shard is entered at
   the compiled initial state; each later shard is entered at the union
   frontier its predecessor's summary maps the previous entry set to.  An
   empty entry set means every run died earlier — the remaining shards are
   provably unreachable and are never replayed.

4. **Replay** the reachable shards with full capture semantics
   (:func:`replay_shard`), each into a private arena *fragment* whose
   references to list cells of earlier shards are negative placeholders.
   Because the engines keep their live-state list in canonical
   (sorted-by-id) order, a shard's fragment is a pure function of its
   entry-state set and its slice of the buffer — so fragments concatenate
   (:func:`stitch_fragments`), placeholders relocate to the global cell
   ids, and the result is **bit-identical** to what
   :func:`~repro.runtime.engine.evaluate_compiled_arena` builds in one
   pass (the differential harness pins this arena-for-arena).

The summary pass reuses the quiescent-run sprint of the compiled engines
and memoizes ``(state, position) → exit frontier`` checkpoints, so on
sparse-match workloads the per-shard cost of summarizing *all* entry
states converges to about one extra scan: most entry states die or merge
into the same trajectory within a few events and then hit the memo.

Counting (Algorithm 3) shards without any replay at all: partial-run
counts evolve linearly (capturing adds a state's count to its targets,
reading moves counts), so a per-shard, per-entry-state **count vector**
(:func:`count_sharded`) composes by matrix-style accumulation and the
stitched product is the exact output count.

Worker orchestration ships each worker only its *slice* of the class-id
buffer (never the document, whose encoding cache would be dropped at the
pickling boundary and trigger a full re-encode per worker) plus the
compiled automaton once per pool via the initializer.  A persistent
:class:`ShardPool` amortizes process start-up across evaluations; the
batch engine reuses its own worker pool through the same task functions.
"""

from __future__ import annotations

import logging
import multiprocessing
import threading
from time import perf_counter

from repro.core.errors import (
    EvaluationError,
    NotDeterministicError,
    ReproError,
    TaskDeadlineError,
    WorkerCrashError,
)
from repro.runtime import resilience
from repro.runtime.compiled import CompiledEVA
from repro.runtime.dag import NIL, CompiledResultDag
from repro.runtime.kernel import (
    SUMMARY_MEMO_CAP,
    KernelSpec,
    _entry_start_ref,
    _entry_end_ref,
    build_kernel,
)
from repro.runtime.runlength import (
    count_vectors_runlength,
    resolve_kernel,
    summary_runlength,
)

__all__ = [
    "DEFAULT_SHARD_MIN_CHARS",
    "SHARD_METRICS",
    "ShardFragment",
    "ShardMetrics",
    "ShardPool",
    "apply_summary",
    "compose_summaries",
    "count_sharded",
    "evaluate_sharded",
    "plan_shards",
    "replay_shard",
    "shard_metrics_snapshot",
    "shard_summary",
    "stitch_fragments",
]

#: Below this many characters a document is not worth sharding: the serial
#: arena engine finishes in well under the cost of task pickling (let
#: alone a process fork), so the facade and the batch engine fall back to
#: the single-core path.  Callers that know better (benchmarks, tests)
#: bypass the threshold by calling :func:`evaluate_sharded` directly.
DEFAULT_SHARD_MIN_CHARS = 32768

# SUMMARY_MEMO_CAP (the cap on the per-shard ``(state, position) →
# frontier`` memo of the summary pass) moved to the kernel module with
# the kernel-spec refactor and is re-exported above for back-compat.


# ---------------------------------------------------------------------- #
# Shard metrics (consumed by the server's /metrics endpoint)
# ---------------------------------------------------------------------- #


class ShardMetrics:
    """Process-wide counters for shard-parallel evaluation.

    Lock-guarded like :class:`~repro.server.metrics.ServerMetrics`: the
    counters are written from evaluation call sites on any thread and
    snapshotted by the server's ``/metrics`` endpoint.  Times are summed
    *task* durations (as measured inside each summary / replay task), so
    the summary-vs-replay split is meaningful regardless of how many
    cores the tasks actually ran on.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._documents_sharded = 0
        self._shards_planned = 0
        self._shards_evaluated = 0
        self._shards_skipped_unreachable = 0
        self._summary_seconds = 0.0
        self._replay_seconds = 0.0

    def record(
        self,
        *,
        planned: int,
        evaluated: int,
        skipped: int,
        summary_seconds: float,
        replay_seconds: float,
    ) -> None:
        with self._lock:
            self._documents_sharded += 1
            self._shards_planned += planned
            self._shards_evaluated += evaluated
            self._shards_skipped_unreachable += skipped
            self._summary_seconds += summary_seconds
            self._replay_seconds += replay_seconds

    def reset(self) -> None:
        with self._lock:
            self._documents_sharded = 0
            self._shards_planned = 0
            self._shards_evaluated = 0
            self._shards_skipped_unreachable = 0
            self._summary_seconds = 0.0
            self._replay_seconds = 0.0

    def snapshot(self) -> dict[str, int | float]:
        """The JSON-ready counter block exposed under ``/metrics``."""
        with self._lock:
            return {
                "documents_sharded": self._documents_sharded,
                "shards_planned": self._shards_planned,
                "shards_evaluated": self._shards_evaluated,
                "shards_skipped_unreachable": self._shards_skipped_unreachable,
                "summary_seconds": round(self._summary_seconds, 6),
                "replay_seconds": round(self._replay_seconds, 6),
            }


#: The process-wide metrics instance every sharded evaluation records to.
SHARD_METRICS = ShardMetrics()


def shard_metrics_snapshot() -> dict[str, int | float]:
    """The process-wide shard counters (the server's ``/metrics`` block)."""
    return SHARD_METRICS.snapshot()


# ---------------------------------------------------------------------- #
# Shard planning
# ---------------------------------------------------------------------- #


def plan_shards(length: int, shards: int) -> list[tuple[int, int]]:
    """Split ``[0, length)`` into up to *shards* near-equal slices.

    Returns ``(begin, end)`` pairs covering the range without gaps.  The
    class-id buffer holds one id per codepoint, so any index is a valid
    (UTF-8-safe) split point; asking for more shards than characters
    degrades to one-character shards, and an empty document is one empty
    shard (the replay of which is exactly the empty-document arena).
    """
    if shards < 1:
        raise EvaluationError(f"shard count must be positive, got {shards}")
    if length <= 0:
        return [(0, 0)]
    shards = min(shards, length)
    base, extra = divmod(length, shards)
    bounds = []
    begin = 0
    for index in range(shards):
        end = begin + base + (1 if index < extra else 0)
        bounds.append((begin, end))
        begin = end
    return bounds


# ---------------------------------------------------------------------- #
# The capture-free summary pass
# ---------------------------------------------------------------------- #


# The frontier at position ``n`` of the run set entered at ``entry`` —
# the state-set shadow of the engines' loop (the ``capture="frontier"``
# kernel spec): capturing adds each live state's variable targets,
# reading moves every state through its letter transition and drops the
# dead.  No arena, no pairs, no counts — and the same quiescent sprints,
# so a shard of sparse input costs one C-level scan.  Whenever the set
# collapses to a single state, ``(state, position)`` fully determines
# the rest of the run; the ``memo`` argument caches those checkpoints
# across entry states (it converges quickly: most entry states die or
# merge into one surviving trajectory).  Signature:
# ``_frontier_run(compiled, buf, n, entry, memo, fast_path)``.
_frontier_run = build_kernel(KernelSpec(capture="frontier", entry="states"))


def shard_summary(
    compiled: CompiledEVA,
    buf,
    n: int,
    *,
    entry_states=None,
    fast_path: bool = True,
) -> dict[int, tuple[int, ...]]:
    """Map each entry state to its exit frontier over ``buf[0:n]``.

    *entry_states* defaults to every state of the automaton — the summary
    of a shard must be computed before anyone knows which entry states
    the stitch will select.  The returned frontiers are sorted tuples of
    state ids; a dead entry maps to the empty tuple.
    """
    if entry_states is None:
        entry_states = range(compiled.num_states)
    memo: dict = {}
    return {
        entry: _frontier_run(compiled, buf, n, entry, memo, fast_path)
        for entry in entry_states
    }


def apply_summary(
    summary: dict[int, tuple[int, ...]], entries
) -> tuple[int, ...]:
    """The exit frontier of a shard entered at the state set *entries*."""
    out: set[int] = set()
    for state in entries:
        out.update(summary[state])
    return tuple(sorted(out))


def compose_summaries(
    first: dict[int, tuple[int, ...]], second: dict[int, tuple[int, ...]]
) -> dict[int, tuple[int, ...]]:
    """The summary of two adjacent shards taken as one.

    Frontier evolution is a union-homomorphism over state sets, so
    composition is associative — ``compose(S(a), S(b)) == S(a + b)`` for
    adjacent slices ``a`` and ``b`` (pinned by the property suite).  The
    *second* summary must cover every state the *first* can exit into
    (summaries over all states, the default, always do).
    """
    return {
        entry: apply_summary(second, frontier) for entry, frontier in first.items()
    }


# ---------------------------------------------------------------------- #
# Replay: full capture semantics into a relocatable fragment
# ---------------------------------------------------------------------- #


# _entry_start_ref / _entry_end_ref (the negative placeholder encoding
# for entry lists living in earlier shards) moved to the kernel module —
# the replay kernel allocates them — and are re-exported above.

# The arena kernel entered at a caller-provided state set (the
# ``entry="states"`` spec point): relocatable splices via deferred
# fixups, the final capturing phase gated on ``is_last``.
_replay_kernel = build_kernel(KernelSpec(capture="arena", entry="states"))

# Algorithm 3 entered at one caller-provided state (count vectors).
_count_entry_kernel = build_kernel(KernelSpec(capture="count", entry="states"))


class ShardFragment:
    """One shard's arena fragment, in relocatable (picklable) form.

    Cell references are either local ids (``>= 0``), ``NIL``, or entry
    placeholders (``<= -2``) standing for the ``(start, end)`` pair of
    the *j*-th entry state's list in the previous shard — see
    :func:`_entry_start_ref`.  ``fixups`` are splices whose target end
    cell lives in an earlier shard: they are applied (and checked for
    the single-assignment discipline) during stitching.  Node positions
    are absolute document positions already.
    """

    __slots__ = (
        "entries",
        "node_markers",
        "node_positions",
        "node_starts",
        "node_ends",
        "cell_nodes",
        "cell_nexts",
        "fixups",
        "exit_states",
        "exit_pairs",
        "final_entries",
    )

    def __init__(
        self,
        entries,
        node_markers,
        node_positions,
        node_starts,
        node_ends,
        cell_nodes,
        cell_nexts,
        fixups,
        exit_states,
        exit_pairs,
        final_entries,
    ) -> None:
        self.entries = entries
        self.node_markers = node_markers
        self.node_positions = node_positions
        self.node_starts = node_starts
        self.node_ends = node_ends
        self.cell_nodes = cell_nodes
        self.cell_nexts = cell_nexts
        self.fixups = fixups
        self.exit_states = exit_states
        self.exit_pairs = exit_pairs
        self.final_entries = final_entries

    def __getstate__(self):
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __setstate__(self, state) -> None:
        for slot, value in zip(self.__slots__, state):
            setattr(self, slot, value)

    def __repr__(self) -> str:
        return (
            f"ShardFragment(entries={self.entries}, nodes={len(self.node_markers)}, "
            f"cells={len(self.cell_nodes)}, exit={self.exit_states})"
        )


def replay_shard(
    compiled: CompiledEVA,
    buf,
    n: int,
    base: int,
    entries,
    *,
    is_first: bool,
    is_last: bool,
    fast_path: bool = True,
) -> ShardFragment:
    """Evaluate one shard with full capture semantics.

    The arena kernel in its ``entry="states"`` flavour: the same
    generated loop as the one-pass engine, started at the canonical
    (sorted) entry-state list *entries* instead of the initial state, over the
    shard's buffer slice (*base* is the shard's absolute start position,
    added to every node position).  The first shard allocates cell 0
    (the initial list ``[⊥]``) and must be entered at the initial state;
    later shards reference their entry lists through placeholders.  Only
    the last shard runs the final capturing phase and collects
    ``final_entries`` — an interior shard ends after reading its last
    character, because the phase at the boundary position belongs to its
    successor.

    Canonical live order is what makes this exact: the sequential engine
    arrives at ``base`` with its active list sorted, so replaying from
    ``sorted(entries)`` visits states, allocates nodes/cells and splices
    lists in the same order the one-pass engine does.
    """
    if is_first and tuple(entries) != (compiled.initial,):
        raise EvaluationError(
            "the first shard is entered at the compiled initial state, "
            f"got entry set {tuple(entries)!r}"
        )
    (
        active,
        cur_start,
        cur_end,
        node_markers,
        node_positions,
        node_starts,
        node_ends,
        cell_nodes,
        cell_nexts,
        fixups,
        final_entries,
    ) = _replay_kernel(compiled, buf, n, base, entries, is_first, is_last, fast_path)

    exit_states = tuple(active)
    exit_pairs = [(cur_start[state], cur_end[state]) for state in active]
    return ShardFragment(
        tuple(entries),
        node_markers,
        node_positions,
        node_starts,
        node_ends,
        cell_nodes,
        cell_nexts,
        fixups,
        exit_states,
        exit_pairs,
        final_entries,
    )


def stitch_fragments(
    compiled: CompiledEVA, document_length: int, fragments: list[ShardFragment]
) -> CompiledResultDag:
    """Concatenate shard fragments into one :class:`CompiledResultDag`.

    Fragments arrive in shard order (the reachable prefix).  Cells and
    nodes keep their relative order, so the concatenation allocates ids
    in the same chronological order the one-pass engine does; entry
    placeholders resolve to the previous fragment's (already global)
    exit pair for that entry state, and deferred splice fixups are
    applied under the same single-assignment check the engines enforce.
    """
    node_markers: list[int] = []
    node_positions: list[int] = []
    node_starts: list[int] = []
    node_ends: list[int] = []
    cell_nodes: list[int] = []
    cell_nexts: list[int] = []
    final_entries: list[tuple[int, int, int]] = []
    exit_pairs: list[tuple[int, int]] = []
    exit_states: tuple[int, ...] = ()

    for index, fragment in enumerate(fragments):
        if index == 0:
            if fragment.entries != (compiled.initial,):
                raise EvaluationError(
                    "the first fragment must be entered at the initial state"
                )
        elif fragment.entries != exit_states:
            raise EvaluationError(
                f"fragment {index} was replayed for entry set "
                f"{fragment.entries!r} but its predecessor exits at "
                f"{exit_states!r}"
            )
        cell_offset = len(cell_nodes)
        node_offset = len(node_markers)
        entry_pairs = exit_pairs

        def relocate(ref: int) -> int:
            if ref >= 0:
                return ref + cell_offset
            if ref == NIL:
                return NIL
            slot = -ref - 2
            pair = entry_pairs[slot >> 1]
            return pair[slot & 1]

        node_markers.extend(fragment.node_markers)
        node_positions.extend(fragment.node_positions)
        node_starts.extend(relocate(ref) for ref in fragment.node_starts)
        node_ends.extend(relocate(ref) for ref in fragment.node_ends)
        cell_nodes.extend(
            node + node_offset if node != NIL else NIL
            for node in fragment.cell_nodes
        )
        cell_nexts.extend(relocate(ref) for ref in fragment.cell_nexts)
        for end_ref, start_ref in fragment.fixups.items():
            end_cell = relocate(end_ref)
            if cell_nexts[end_cell] != NIL:
                raise NotDeterministicError(
                    "arena append would overwrite a next pointer; the "
                    "compiled automaton is not deterministic"
                )
            cell_nexts[end_cell] = relocate(start_ref)
        exit_states = fragment.exit_states
        exit_pairs = [
            (relocate(start), relocate(end)) for start, end in fragment.exit_pairs
        ]
        final_entries.extend(
            (state, relocate(start), relocate(end))
            for state, start, end in fragment.final_entries
        )

    return CompiledResultDag(
        compiled,
        document_length,
        node_markers,
        node_positions,
        node_starts,
        node_ends,
        cell_nodes,
        cell_nexts,
        final_entries,
    )


# ---------------------------------------------------------------------- #
# Count vectors (Algorithm 3 shards without a replay pass)
# ---------------------------------------------------------------------- #


def _count_run(
    compiled: CompiledEVA,
    buf,
    n: int,
    entry: int,
    include_final: bool,
    fast_path: bool,
) -> dict[int, int]:
    """The exit count vector of one partial run entered at *entry*.

    Seeds ``counts[entry] = 1`` and runs Algorithm 3's loop over the
    shard; the result maps each exit state to the number of partial runs
    parked there.  Count evolution is linear, so the vector for an entry
    carrying count ``c`` is this vector scaled by ``c`` — the stitch in
    :func:`count_sharded` exploits exactly that superposition.
    """
    active, counts = _count_entry_kernel(
        compiled, buf, n, entry, include_final, fast_path
    )
    return {state: counts[state] for state in active if counts[state]}


# ---------------------------------------------------------------------- #
# Worker-process plumbing (module level so it pickles under any context)
# ---------------------------------------------------------------------- #

_WORKER_COMPILED: CompiledEVA | None = None
_WORKER_FAST_PATH: bool = True


def _init_shard_worker(
    compiled: CompiledEVA,
    fast_path: bool = True,
    faults: "resilience.FaultPlan | None" = None,
) -> None:
    global _WORKER_COMPILED, _WORKER_FAST_PATH
    _WORKER_COMPILED = compiled
    _WORKER_FAST_PATH = fast_path
    if faults is not None:
        resilience.install_fault_plan(faults)


def _worker_automaton() -> CompiledEVA:
    compiled = _WORKER_COMPILED
    assert compiled is not None, "shard worker pool used before initialization"
    # Every shard task fetches the automaton exactly once, so this is
    # the one choke point the fault-injection harness needs.
    if resilience._ACTIVE_PLAN is not None:
        resilience.maybe_fault("shard-task")
    return compiled


def _summary_task(payload: tuple) -> tuple:
    index, buf, n = payload
    started = perf_counter()
    summary = shard_summary(
        _worker_automaton(), buf, n, fast_path=_WORKER_FAST_PATH
    )
    return index, summary, perf_counter() - started


def _summary_task_rl(payload: tuple) -> tuple:
    """The summary pass over the shard's run-length encoding.

    Same payload and result shape as :func:`_summary_task`, but each run
    of ``k`` identical classes costs ``O(log k)`` Boolean row
    applications (:func:`repro.runtime.runlength.summary_runlength`)
    instead of ``k`` characters — the per-run matrices compose with the
    per-shard summary stitch unchanged, because both express the same
    per-position state-set transition.
    """
    index, buf, n = payload
    started = perf_counter()
    summary = summary_runlength(_worker_automaton(), buf, n)
    return index, summary, perf_counter() - started


def _replay_task(payload: tuple) -> tuple:
    index, buf, n, base, entries, is_first, is_last = payload
    started = perf_counter()
    fragment = replay_shard(
        _worker_automaton(),
        buf,
        n,
        base,
        entries,
        is_first=is_first,
        is_last=is_last,
        fast_path=_WORKER_FAST_PATH,
    )
    return index, fragment, perf_counter() - started


def _count_task(payload: tuple) -> tuple:
    index, buf, n, entries, include_final = payload
    started = perf_counter()
    compiled = _worker_automaton()
    vectors = {
        entry: _count_run(compiled, buf, n, entry, include_final, _WORKER_FAST_PATH)
        for entry in entries
    }
    return index, vectors, perf_counter() - started


def _count_task_rl(payload: tuple) -> tuple:
    """Per-entry count vectors via the run-product algebra.

    Same payload and result shape as :func:`_count_task`; the stitch in
    :func:`count_sharded` consumes both interchangeably (the property
    suite pins the vectors equal entry for entry).
    """
    index, buf, n, entries, include_final = payload
    started = perf_counter()
    vectors = count_vectors_runlength(
        _worker_automaton(), buf[:n], entries, include_final
    )
    return index, vectors, perf_counter() - started


class ShardPool:
    """A persistent worker pool bound to one compiled automaton.

    The automaton crosses the process boundary once (via the pool
    initializer); every task afterwards ships only its shard's slice of
    the class-id buffer.  Keep one pool alive across evaluations — the
    facade and the benchmarks do — so process start-up is paid once, not
    per document.
    """

    def __init__(
        self,
        compiled: CompiledEVA,
        workers: int,
        *,
        fast_path: bool = True,
        faults: "resilience.FaultPlan | None" = None,
    ) -> None:
        if workers < 1:
            raise EvaluationError(f"worker count must be positive, got {workers}")
        self.compiled = compiled
        self.workers = workers
        self.fast_path = fast_path
        context = multiprocessing.get_context()
        self._pool = context.Pool(
            processes=workers,
            initializer=_init_shard_worker,
            initargs=(compiled, fast_path, faults),
        )
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def raw_pool(self):
        """The underlying ``multiprocessing.Pool`` (crash detection reads it)."""
        return None if self._closed else self._pool

    def submit(self, task, payload: tuple):
        """Dispatch one task; returns an async handle with ``.get()``."""
        return self._pool.apply_async(task, (payload,))

    def mark_broken(self) -> None:
        """Tear the pool down after a crash; owners rebuild on next use.

        The facade's per-alphabet pool cache checks ``closed`` before
        reuse, so closing here is exactly what makes the next
        ``workers > 1`` call start from a fresh pool.
        """
        self.close()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._pool.terminate()
            self._pool.join()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        # Collection can run during interpreter shutdown, when the pool
        # machinery (or the multiprocessing module itself) is already
        # half-dismantled: those failures surface as the specific
        # shutdown exceptions below and are expected.  Anything else is
        # a real bug worth a log line — but never a raise from __del__.
        try:
            self.close()
        except (OSError, ValueError, RuntimeError, AttributeError, TypeError):
            pass
        except Exception:
            logging.getLogger(__name__).exception(
                "ShardPool.__del__: unexpected error while closing the pool"
            )

    def __repr__(self) -> str:
        status = "closed" if self._closed else "open"
        return f"ShardPool(workers={self.workers}, {status})"


class _PoolAdapter:
    """Adapt a foreign ``multiprocessing.Pool`` to the submit interface.

    The batch engine reuses its own worker pool for intra-document
    shard tasks (its initializer also primes the shard worker globals),
    so one set of processes serves both per-document fan-out and
    per-shard fan-out.
    """

    def __init__(self, pool, workers: int) -> None:
        self.workers = workers
        self._pool = pool

    @property
    def raw_pool(self):
        """The wrapped ``multiprocessing.Pool`` (crash detection reads it)."""
        return self._pool

    def submit(self, task, payload: tuple):
        return self._pool.apply_async(task, (payload,))

    def mark_broken(self) -> None:
        """No-op: the pool's owner (the batch engine) supervises it."""


def adapt_pool(pool, workers: int) -> _PoolAdapter:
    """Wrap a raw multiprocessing pool for :func:`evaluate_sharded`."""
    return _PoolAdapter(pool, workers)


# ---------------------------------------------------------------------- #
# Orchestration
# ---------------------------------------------------------------------- #


def _run_one_inline(compiled: CompiledEVA, fast_path: bool, task, payload) -> tuple:
    """Run one task function in this process, exactly as a worker would.

    Primes the worker globals (without a fault plan — the inline path is
    the exactness backstop) and restores them afterwards.
    """
    global _WORKER_COMPILED, _WORKER_FAST_PATH
    saved = (_WORKER_COMPILED, _WORKER_FAST_PATH)
    saved_plan = resilience._ACTIVE_PLAN
    _init_shard_worker(compiled, fast_path)
    resilience.clear_fault_plan()
    try:
        return task(payload)
    finally:
        _WORKER_COMPILED, _WORKER_FAST_PATH = saved
        resilience.install_fault_plan(saved_plan)


def _run_tasks(
    pool,
    compiled: CompiledEVA,
    fast_path: bool,
    calls: list,
    policy: "resilience.ResiliencePolicy | None" = None,
) -> list:
    """Run ``(task, payload)`` calls on *pool*, or inline when it is None.

    The inline path invokes the same module-level task functions the
    workers run — it temporarily primes the worker globals — so the
    pooled and inline flavours cannot drift apart.

    Pooled collection is supervised: each handle is waited on under the
    policy's per-task deadline with dead-worker detection.  A crashed or
    deadlined task (and, once a crash is seen, every later task of the
    round) is re-run inline — shard tasks are pure functions of their
    payload, so the results are exact either way — and the broken pool
    is closed so its owner rebuilds it on next use.  Deterministic
    library errors (``ReproError``) propagate untouched; an unexpected
    worker exception gets one inline re-run, which either succeeds (the
    failure was transient) or raises the real error.
    """
    if pool is None:
        global _WORKER_COMPILED, _WORKER_FAST_PATH
        saved = (_WORKER_COMPILED, _WORKER_FAST_PATH)
        _init_shard_worker(compiled, fast_path)
        try:
            return [task(payload) for task, payload in calls]
        finally:
            _WORKER_COMPILED, _WORKER_FAST_PATH = saved

    if policy is None:
        policy = resilience.DEFAULT_POLICY
    if getattr(pool, "closed", False):
        # An earlier round already marked the pool broken (its owner will
        # rebuild it on the next call); finish this evaluation inline.
        return [
            _run_one_inline(compiled, fast_path, task, payload)
            for task, payload in calls
        ]
    raw_pool = getattr(pool, "raw_pool", None)
    handles = [pool.submit(task, payload) for task, payload in calls]
    results: list = []
    pool_broken = False
    for (task, payload), handle in zip(calls, handles):
        if pool_broken:
            # One worker death poisons the whole round: sibling handles
            # may be lost too, and waiting each out to its own deadline
            # would multiply the stall.  Finish the round inline.
            resilience.RESILIENCE_METRICS.inline_fallback()
            results.append(_run_one_inline(compiled, fast_path, task, payload))
            continue
        try:
            results.append(
                resilience.supervised_get(
                    handle, deadline=policy.task_deadline, raw_pool=raw_pool
                )
            )
        except (WorkerCrashError, TaskDeadlineError):
            pool_broken = True
            resilience.RESILIENCE_METRICS.inline_fallback()
            results.append(_run_one_inline(compiled, fast_path, task, payload))
        except ReproError:
            raise
        except Exception:
            # Raised inside the worker: transient infrastructure failure
            # or a real bug — the inline re-run decides which.
            resilience.RESILIENCE_METRICS.inline_fallback()
            results.append(_run_one_inline(compiled, fast_path, task, payload))
    if pool_broken:
        broken = getattr(pool, "mark_broken", None)
        if broken is not None:
            broken()
    return results


def evaluate_sharded(
    compiled: CompiledEVA,
    document: object,
    *,
    workers: int | None = None,
    shards: int | None = None,
    pool=None,
    fast_path: bool = True,
    metrics: ShardMetrics | None = None,
    kernel: str = "scalar",
    policy: "resilience.ResiliencePolicy | None" = None,
) -> CompiledResultDag:
    """Evaluate *document* shard-parallel; the arena is bit-identical to
    :func:`~repro.runtime.engine.evaluate_compiled_arena`'s.

    ``kernel`` selects how interior shards are *summarized*: the scalar
    frontier walk or the run-length Boolean powers (``"auto"`` resolves
    from the document's measured run statistics).  Replay always runs
    the scalar arena engine — capture fragments must be bit-identical,
    and the runlength arena evaluator is a whole-document engine.

    Pass a persistent :class:`ShardPool` (or :func:`adapt_pool` wrapper)
    to fan shards out to worker processes; with ``pool=None`` the same
    decomposition runs inline in this process (the differential tests
    exercise exactly that path, so pooled results can never diverge from
    inline ones).  *shards* defaults to the worker count.

    Scheduling: round one replays shard 0 (its entry state is known — the
    initial state) concurrently with the summary passes of the interior
    shards; the stitch then resolves every shard's entry set, and round
    two replays the reachable remainder concurrently.  Shards the stitch
    proves unreachable (every run died earlier) are never replayed and
    are counted in the metrics.
    """
    if pool is not None and workers is None:
        workers = pool.workers
    if workers is None:
        workers = 1
    if workers < 1:
        raise EvaluationError(f"worker count must be positive, got {workers}")
    if shards is None:
        shards = max(workers, 1)

    encoded = compiled.encode(document)
    buf = encoded.buffer
    n = encoded.length
    bounds = plan_shards(n, shards)
    total = len(bounds)
    initial = compiled.initial
    summary_task = (
        _summary_task_rl
        if resolve_kernel(kernel, encoded) == "runlength"
        else _summary_task
    )

    summary_seconds = 0.0
    replay_seconds = 0.0
    fragments: dict[int, ShardFragment] = {}
    summaries: dict[int, dict[int, tuple[int, ...]]] = {}

    # Round one: replay the first shard (entry known), summarize the
    # interior.  The last shard's summary is never needed — nothing is
    # entered after it — and the first shard's replay *is* its summary.
    first_begin, first_end = bounds[0]
    round_one: list = [
        (
            _replay_task,
            (
                0,
                buf[first_begin:first_end],
                first_end - first_begin,
                first_begin,
                (initial,),
                True,
                total == 1,
            ),
        )
    ]
    for index in range(1, total - 1):
        begin, end = bounds[index]
        round_one.append((summary_task, (index, buf[begin:end], end - begin)))
    for result in _run_tasks(pool, compiled, fast_path, round_one, policy):
        index, value, seconds = result
        if index == 0:
            fragments[0] = value
            replay_seconds += seconds
        else:
            summaries[index] = value
            summary_seconds += seconds

    # Stitch the entry sets left to right.
    entry_sets: list[tuple[int, ...] | None] = [None] * total
    entry_sets[0] = (initial,)
    reachable = [0]
    frontier = fragments[0].exit_states
    for index in range(1, total):
        if not frontier:
            break
        entry_sets[index] = frontier
        reachable.append(index)
        if index < total - 1:
            frontier = apply_summary(summaries[index], frontier)

    # Round two: replay the reachable remainder concurrently.
    round_two = []
    for index in reachable[1:]:
        begin, end = bounds[index]
        round_two.append(
            (
                _replay_task,
                (
                    index,
                    buf[begin:end],
                    end - begin,
                    begin,
                    entry_sets[index],
                    False,
                    index == total - 1,
                ),
            )
        )
    for result in _run_tasks(pool, compiled, fast_path, round_two, policy):
        index, fragment, seconds = result
        fragments[index] = fragment
        replay_seconds += seconds

    dag = stitch_fragments(
        compiled, n, [fragments[index] for index in reachable]
    )
    (metrics if metrics is not None else SHARD_METRICS).record(
        planned=total,
        evaluated=len(reachable),
        skipped=total - len(reachable),
        summary_seconds=summary_seconds,
        replay_seconds=replay_seconds,
    )
    return dag


def count_sharded(
    compiled: CompiledEVA,
    document: object,
    *,
    workers: int | None = None,
    shards: int | None = None,
    pool=None,
    fast_path: bool = True,
    metrics: ShardMetrics | None = None,
    kernel: str = "scalar",
    policy: "resilience.ResiliencePolicy | None" = None,
) -> int:
    """Algorithm 3 shard-parallel — no replay pass at all.

    Count evolution is linear, so each shard contributes a per-entry
    count vector (:func:`_count_run`) and the stitch is matrix-style
    accumulation: the boundary vector entering shard ``k+1`` is the
    boundary vector entering ``k`` pushed through ``k``'s vectors.  The
    total equals :func:`~repro.runtime.engine.count_compiled` exactly.

    ``kernel="runlength"`` (or ``"auto"`` resolving to it) computes both
    the interior summaries and the per-entry count vectors through the
    run-product algebra of :mod:`repro.runtime.runlength` — same
    summaries, same vectors, ``O(log k)`` per run.
    """
    if pool is not None and workers is None:
        workers = pool.workers
    if workers is None:
        workers = 1
    if workers < 1:
        raise EvaluationError(f"worker count must be positive, got {workers}")
    if shards is None:
        shards = max(workers, 1)

    encoded = compiled.encode(document)
    buf = encoded.buffer
    n = encoded.length
    bounds = plan_shards(n, shards)
    total = len(bounds)
    initial = compiled.initial
    if resolve_kernel(kernel, encoded) == "runlength":
        summary_task, count_task = _summary_task_rl, _count_task_rl
    else:
        summary_task, count_task = _summary_task, _count_task

    summary_seconds = 0.0
    replay_seconds = 0.0
    summaries: dict[int, dict[int, tuple[int, ...]]] = {}
    first_vectors: dict[int, dict[int, int]] | None = None

    # Round one: the first shard's count vectors double as its frontier
    # (a live run always carries a positive count); interior shards get
    # the capture-free summary pass.
    first_begin, first_end = bounds[0]
    round_one: list = [
        (
            count_task,
            (
                0,
                buf[first_begin:first_end],
                first_end - first_begin,
                (initial,),
                total == 1,
            ),
        )
    ]
    for index in range(1, total - 1):
        begin, end = bounds[index]
        round_one.append((summary_task, (index, buf[begin:end], end - begin)))
    for result in _run_tasks(pool, compiled, fast_path, round_one, policy):
        index, value, seconds = result
        if index == 0:
            first_vectors = value
            replay_seconds += seconds
        else:
            summaries[index] = value
            summary_seconds += seconds
    assert first_vectors is not None

    boundary = dict(first_vectors[initial])
    entry_sets: list[tuple[int, ...] | None] = [None] * total
    reachable: list[int] = []
    frontier = tuple(sorted(boundary))
    for index in range(1, total):
        if not frontier:
            break
        entry_sets[index] = frontier
        reachable.append(index)
        if index < total - 1:
            frontier = apply_summary(summaries[index], frontier)

    round_two = []
    for index in reachable:
        begin, end = bounds[index]
        round_two.append(
            (
                count_task,
                (
                    index,
                    buf[begin:end],
                    end - begin,
                    entry_sets[index],
                    index == total - 1,
                ),
            )
        )
    vectors_by_shard: dict[int, dict[int, dict[int, int]]] = {}
    for result in _run_tasks(pool, compiled, fast_path, round_two, policy):
        index, vectors, seconds = result
        vectors_by_shard[index] = vectors
        replay_seconds += seconds

    for index in reachable:
        vectors = vectors_by_shard[index]
        pushed: dict[int, int] = {}
        for state, amount in boundary.items():
            for target, count in vectors[state].items():
                pushed[target] = pushed.get(target, 0) + amount * count
        boundary = pushed

    is_final = compiled.is_final
    total_count = sum(
        amount for state, amount in boundary.items() if is_final[state]
    )
    (metrics if metrics is not None else SHARD_METRICS).record(
        planned=total,
        evaluated=1 + len(reachable),
        skipped=total - 1 - len(reachable),
        summary_seconds=summary_seconds,
        replay_seconds=replay_seconds,
    )
    return total_count
