"""The logical query-plan layer over spanner-algebra expressions.

A :class:`LogicalNode` tree is the optimizer's working representation of a
:class:`~repro.algebra.expressions.SpannerExpression`: the same operators
(atom, projection, union, join), but with *n-ary* union and join nodes so
that rewrite rules (:mod:`repro.algebra.optimizer`) can flatten, reorder
and push operators without fighting the binary expression encoding.

The layer is deliberately lossless in both directions:

* :func:`logical_from_expression` builds the tree (binary unions/joins stay
  binary until the flattening rewrite merges them);
* :func:`expression_from_logical` folds a tree back into a
  :class:`SpannerExpression` — this is how the optimizer hands a *fused*
  subtree to the automaton-level constructions of Proposition 4.4.

:func:`render_logical` pretty-prints a tree for the ``repro explain``
subcommand and :meth:`Spanner.explain`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.core.errors import CompilationError
from repro.algebra.expressions import (
    Atom,
    Join,
    Projection,
    SpannerExpression,
    UnionExpr,
)

__all__ = [
    "LogicalNode",
    "LogicalAtom",
    "LogicalProject",
    "LogicalUnion",
    "LogicalJoin",
    "logical_from_expression",
    "expression_from_logical",
    "render_logical",
    "render_tree",
]


class LogicalNode:
    """Base class of logical-plan operator nodes."""

    __slots__ = ()

    def variables(self) -> frozenset[str]:
        """The variables the node's output mappings may assign."""
        raise NotImplementedError

    def children(self) -> tuple["LogicalNode", ...]:
        """The direct operands, left to right."""
        return ()

    def atoms(self) -> Iterator[Atom]:
        """The atoms of the subtree, left to right."""
        for child in self.children():
            yield from child.atoms()

    def walk(self) -> Iterator["LogicalNode"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def label(self) -> str:
        """The one-line operator label used by :func:`render_logical`."""
        raise NotImplementedError


class LogicalAtom(LogicalNode):
    """A leaf wrapping one algebra :class:`Atom`."""

    __slots__ = ("atom",)

    def __init__(self, atom: Atom) -> None:
        if not isinstance(atom, Atom):
            raise CompilationError(f"LogicalAtom expects an Atom, got {atom!r}")
        self.atom = atom

    def variables(self) -> frozenset[str]:
        return self.atom.variables()

    def atoms(self) -> Iterator[Atom]:
        yield self.atom

    def label(self) -> str:
        source = self.atom.source
        text = str(source)
        if len(text) > 40:
            text = text[:37] + "..."
        return f"atom[{type(source).__name__}] {text}"

    def __repr__(self) -> str:
        return f"LogicalAtom({self.atom!r})"


class LogicalProject(LogicalNode):
    """``π_Y(child)``."""

    __slots__ = ("child", "keep")

    def __init__(self, child: LogicalNode, keep: Iterable[str]) -> None:
        self.child = child
        self.keep = frozenset(keep)

    def variables(self) -> frozenset[str]:
        return self.child.variables() & self.keep

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"π[{', '.join(sorted(self.keep))}]"

    def __repr__(self) -> str:
        return f"LogicalProject({self.child!r}, {sorted(self.keep)!r})"


class _NaryNode(LogicalNode):
    """Shared implementation of the n-ary union and join nodes."""

    __slots__ = ("operands",)
    _symbol = "?"

    def __init__(self, operands: Iterable[LogicalNode]) -> None:
        operands = tuple(operands)
        if len(operands) < 2:
            raise CompilationError(
                f"{type(self).__name__} requires at least two operands, got {len(operands)}"
            )
        self.operands = operands

    def variables(self) -> frozenset[str]:
        return frozenset().union(*(child.variables() for child in self.operands))

    def children(self) -> tuple[LogicalNode, ...]:
        return self.operands

    def label(self) -> str:
        return f"{self._symbol} ({len(self.operands)}-way)"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({list(self.operands)!r})"


class LogicalUnion(_NaryNode):
    """``child1 ∪ child2 ∪ …`` (n-ary after the flattening rewrite)."""

    __slots__ = ()
    _symbol = "∪"


class LogicalJoin(_NaryNode):
    """``child1 ⋈ child2 ⋈ …`` (n-ary after the flattening rewrite)."""

    __slots__ = ()
    _symbol = "⋈"


# ---------------------------------------------------------------------- #
# Conversions
# ---------------------------------------------------------------------- #


def logical_from_expression(expression: SpannerExpression) -> LogicalNode:
    """Build the logical tree of an algebra expression (binary, unflattened)."""
    if isinstance(expression, Atom):
        return LogicalAtom(expression)
    if isinstance(expression, Projection):
        return LogicalProject(logical_from_expression(expression.child), expression.keep)
    if isinstance(expression, UnionExpr):
        return LogicalUnion(
            (logical_from_expression(expression.left), logical_from_expression(expression.right))
        )
    if isinstance(expression, Join):
        return LogicalJoin(
            (logical_from_expression(expression.left), logical_from_expression(expression.right))
        )
    raise CompilationError(f"unsupported expression {expression!r}")


def expression_from_logical(node: LogicalNode) -> SpannerExpression:
    """Fold a logical tree back into a :class:`SpannerExpression`.

    N-ary unions and joins fold left-deep, preserving operand order (which
    the join-reordering rewrite has already optimized).
    """
    if isinstance(node, LogicalAtom):
        return node.atom
    if isinstance(node, LogicalProject):
        return Projection(expression_from_logical(node.child), node.keep)
    if isinstance(node, (LogicalUnion, LogicalJoin)):
        combine: Callable[[SpannerExpression, SpannerExpression], SpannerExpression]
        combine = UnionExpr if isinstance(node, LogicalUnion) else Join
        folded = expression_from_logical(node.operands[0])
        for operand in node.operands[1:]:
            folded = combine(folded, expression_from_logical(operand))
        return folded
    raise CompilationError(f"unsupported logical node {node!r}")


def render_tree(
    root,
    label: Callable[[object], str],
    children: Callable[[object], tuple],
    annotate: Callable[[object], str] | None = None,
) -> str:
    """Render any operator tree as an indented box-drawing string.

    Shared by :func:`render_logical` and
    :func:`repro.runtime.operators.render_physical`, so the two plan
    renderings of ``repro explain`` can never drift apart.  *annotate*,
    when given, maps a node to an extra note appended to its line.
    """
    lines: list[str] = []

    def visit(current, prefix: str, tail: str) -> None:
        annotation = annotate(current) if annotate is not None else ""
        note = f"  -- {annotation}" if annotation else ""
        lines.append(f"{prefix}{tail}{label(current)}{note}")
        offspring = children(current)
        child_prefix = prefix + ("   " if tail == "└─ " else "│  " if tail == "├─ " else "")
        for index, child in enumerate(offspring):
            last = index == len(offspring) - 1
            visit(child, child_prefix, "└─ " if last else "├─ ")

    visit(root, "", "")
    return "\n".join(lines)


def render_logical(
    node: LogicalNode, annotate: Callable[[LogicalNode], str] | None = None
) -> str:
    """Render a logical tree as an indented multi-line string.

    *annotate*, when given, maps a node to an extra annotation appended to
    its line (the optimizer uses it for estimated automaton sizes).
    """
    return render_tree(
        node,
        label=lambda current: current.label(),
        children=lambda current: current.children(),
        annotate=annotate,
    )
