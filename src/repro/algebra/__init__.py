"""The spanner algebra: union, join and projection over spanners."""

from repro.algebra.expressions import Atom, Join, Projection, SpannerExpression, UnionExpr
from repro.algebra.operators import join_mapping_sets, project_mapping_set, union_mapping_sets
from repro.algebra.automaton_ops import (
    join_eva,
    project_eva,
    union_deterministic_eva,
    union_eva,
)
from repro.algebra.compile import compile_expression, evaluate_expression_setwise

__all__ = [
    "Atom",
    "Join",
    "Projection",
    "SpannerExpression",
    "UnionExpr",
    "compile_expression",
    "evaluate_expression_setwise",
    "join_eva",
    "join_mapping_sets",
    "project_eva",
    "project_mapping_set",
    "union_deterministic_eva",
    "union_eva",
    "union_mapping_sets",
]
