"""The spanner algebra: union, join and projection over spanners.

Besides the expression trees and the two evaluation routes of the paper
(automaton-level constructions in :mod:`repro.algebra.automaton_ops`,
set-level operators in :mod:`repro.algebra.operators`), the package hosts
the logical query-plan layer (:mod:`repro.algebra.logical`) and the
cost-based optimizer (:mod:`repro.algebra.optimizer`) that picks per
operator between fusing into one automaton and cutting into runtime arena
operators.
"""

from repro.algebra.expressions import Atom, Join, Projection, SpannerExpression, UnionExpr
from repro.algebra.operators import join_mapping_sets, project_mapping_set, union_mapping_sets
from repro.algebra.automaton_ops import (
    join_eva,
    project_eva,
    union_deterministic_eva,
    union_eva,
)
from repro.algebra.compile import compile_expression, evaluate_expression_setwise
from repro.algebra.logical import (
    LogicalAtom,
    LogicalJoin,
    LogicalNode,
    LogicalProject,
    LogicalUnion,
    expression_from_logical,
    logical_from_expression,
    render_logical,
)
from repro.algebra.optimizer import OptimizedPlan, optimize

__all__ = [
    "Atom",
    "Join",
    "LogicalAtom",
    "LogicalJoin",
    "LogicalNode",
    "LogicalProject",
    "LogicalUnion",
    "OptimizedPlan",
    "Projection",
    "SpannerExpression",
    "UnionExpr",
    "compile_expression",
    "evaluate_expression_setwise",
    "expression_from_logical",
    "join_eva",
    "join_mapping_sets",
    "logical_from_expression",
    "optimize",
    "project_eva",
    "project_mapping_set",
    "render_logical",
    "union_deterministic_eva",
    "union_eva",
    "union_mapping_sets",
]
