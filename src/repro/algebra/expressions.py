"""Expression trees of the spanner algebra ``L^{π,∪,⋈}``.

Atoms are basic spanners — a regex formula, a classic VA or an extended VA
— and the operators are projection, union and natural join (Section 2 of
the paper).  Expressions are immutable; compilation into a single automaton
lives in :mod:`repro.algebra.compile`.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.errors import CompilationError
from repro.automata.eva import ExtendedVA
from repro.automata.va import VariableSetAutomaton
from repro.regex.ast import RegexNode
from repro.regex.parser import parse_regex

__all__ = ["SpannerExpression", "Atom", "Projection", "UnionExpr", "Join"]


class SpannerExpression:
    """Base class of spanner algebra expressions."""

    __slots__ = ()

    def variables(self) -> frozenset[str]:
        """The variables the expression's output mappings may assign."""
        raise NotImplementedError

    # Operator sugar -----------------------------------------------------

    def union(self, other: "SpannerExpression") -> "UnionExpr":
        """``self ∪ other``."""
        return UnionExpr(self, _as_expression(other))

    def join(self, other: "SpannerExpression") -> "Join":
        """``self ⋈ other``."""
        return Join(self, _as_expression(other))

    def project(self, variables: Iterable[str]) -> "Projection":
        """``π_Y(self)``."""
        return Projection(self, variables)

    def __or__(self, other: "SpannerExpression") -> "UnionExpr":
        return self.union(other)

    def __and__(self, other: "SpannerExpression") -> "Join":
        return self.join(other)

    def atoms(self) -> tuple["Atom", ...]:
        """The atomic sub-expressions, left to right."""
        raise NotImplementedError

    def operator_count(self) -> int:
        """The number of algebra operators in the expression."""
        raise NotImplementedError

    def size(self) -> int:
        """``|e|``: total size of the atoms plus the number of operators."""
        return sum(atom.source_size() for atom in self.atoms()) + self.operator_count()


def _as_expression(value: object) -> "SpannerExpression":
    if isinstance(value, SpannerExpression):
        return value
    if isinstance(value, (str, RegexNode, VariableSetAutomaton, ExtendedVA)):
        return Atom(value)
    raise CompilationError(f"cannot interpret {value!r} as a spanner expression")


class Atom(SpannerExpression):
    """An atomic spanner: a regex formula, a VA or an extended VA."""

    __slots__ = ("source", "_regex")

    def __init__(self, source: str | RegexNode | VariableSetAutomaton | ExtendedVA) -> None:
        if isinstance(source, str):
            source = parse_regex(source)
        if not isinstance(source, (RegexNode, VariableSetAutomaton, ExtendedVA)):
            raise CompilationError(f"unsupported atom source {source!r}")
        self.source = source

    def variables(self) -> frozenset[str]:
        return frozenset(self.source.variables())

    def atoms(self) -> tuple["Atom", ...]:
        return (self,)

    def operator_count(self) -> int:
        return 0

    def source_size(self) -> int:
        """The paper's ``|α|`` for this atom."""
        if isinstance(self.source, RegexNode):
            return self.source.size()
        return self.source.size

    def __repr__(self) -> str:
        return f"Atom({self.source!r})"


class Projection(SpannerExpression):
    """``π_Y(e)``: keep only the variables in ``Y``."""

    __slots__ = ("child", "keep")

    def __init__(self, child: SpannerExpression, variables: Iterable[str]) -> None:
        self.child = _as_expression(child)
        self.keep = frozenset(variables)

    def variables(self) -> frozenset[str]:
        return self.child.variables() & self.keep

    def atoms(self) -> tuple["Atom", ...]:
        return self.child.atoms()

    def operator_count(self) -> int:
        return 1 + self.child.operator_count()

    def __repr__(self) -> str:
        return f"Projection({self.child!r}, {sorted(self.keep)!r})"


class UnionExpr(SpannerExpression):
    """``e1 ∪ e2``."""

    __slots__ = ("left", "right")

    def __init__(self, left: SpannerExpression, right: SpannerExpression) -> None:
        self.left = _as_expression(left)
        self.right = _as_expression(right)

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def atoms(self) -> tuple["Atom", ...]:
        return self.left.atoms() + self.right.atoms()

    def operator_count(self) -> int:
        return 1 + self.left.operator_count() + self.right.operator_count()

    def __repr__(self) -> str:
        return f"UnionExpr({self.left!r}, {self.right!r})"


class Join(SpannerExpression):
    """``e1 ⋈ e2``: the natural join on the shared variables."""

    __slots__ = ("left", "right")

    def __init__(self, left: SpannerExpression, right: SpannerExpression) -> None:
        self.left = _as_expression(left)
        self.right = _as_expression(right)

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def atoms(self) -> tuple["Atom", ...]:
        return self.left.atoms() + self.right.atoms()

    def operator_count(self) -> int:
        return 1 + self.left.operator_count() + self.right.operator_count()

    def __repr__(self) -> str:
        return f"Join({self.left!r}, {self.right!r})"
