"""Cost-based optimization of spanner-algebra expressions.

The paper offers two evaluation routes for an algebra expression: fuse it
into a single extended VA with the automaton-level constructions of
Proposition 4.4 (the route of Propositions 4.5/4.6, and the only one
:mod:`repro.algebra.compile` implements), or evaluate subexpressions
independently and combine their mapping sets.  Neither route wins always —
the join construction is a quadratic product whose determinization can be
exponential, while runtime combination materializes intermediate mapping
sets.  :func:`optimize` chooses **per operator**:

1. the expression is converted into a :class:`~repro.algebra.logical`
   operator tree;
2. rewrite rules run — union/join flattening, projection pushdown through
   join and union, join reordering by estimated automaton size;
3. a cost model walks the tree bottom-up and decides for every operator
   whether to *fuse* it into its parent's automaton or to *cut* the edge
   and execute it at runtime with the arena operators of
   :mod:`repro.runtime.operators`.

Join validation (the correctness gap of ``compile_expression``, whose
``check_functional_joins`` defaults to ``False``): Proposition 4.4's join
construction is only stated for *functional* spanners, so by default the
optimizer checks :func:`~repro.automata.analysis.is_functional` **once per
atom** that occurs under a join and raises a clear
:class:`~repro.core.errors.CompilationError` for non-functional operands.
Pass ``unchecked=True`` to skip the check — the atoms are then *assumed*
functional.  Beyond the atom check, a join operand subtree is only
*fused* when it is provably functional by structure (atoms functional;
union branches with identical variable sets; see
:func:`provably_functional`) — otherwise the join is cut, because the
runtime hash join is correct for arbitrary mapping sets.  The structural
guard is free and therefore stays active even under ``unchecked``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.errors import CompilationError
from repro.automata.analysis import is_functional, statistics
from repro.algebra.compile import compile_atom
from repro.algebra.expressions import Atom, SpannerExpression
from repro.algebra.logical import (
    LogicalAtom,
    LogicalJoin,
    LogicalNode,
    LogicalProject,
    LogicalUnion,
    expression_from_logical,
    logical_from_expression,
    render_logical,
)
from repro.runtime.operators import (
    ArenaProject,
    FusedLeaf,
    HashJoin,
    MergeUnion,
    PhysicalOperator,
    render_physical,
)

__all__ = [
    "DEFAULT_JOIN_FUSE_THRESHOLD",
    "DEFAULT_UNION_FUSE_THRESHOLD",
    "AtomProfile",
    "OptimizedPlan",
    "estimate_fused_states",
    "flatten_operators",
    "optimize",
    "provably_functional",
    "push_projections",
    "reorder_joins",
]

#: Above this many *estimated* product states, a join is cut and executed
#: as a runtime hash join instead of the Proposition 4.4 product (whose
#: determinization may then be exponential on top).
DEFAULT_JOIN_FUSE_THRESHOLD = 64

#: Unions are linear to fuse, so their threshold is far higher: only very
#: wide unions (whose determinized product of branches explodes) are cut.
DEFAULT_UNION_FUSE_THRESHOLD = 512


# ---------------------------------------------------------------------- #
# Rewrite rules (each is a pure LogicalNode -> LogicalNode function)
# ---------------------------------------------------------------------- #


def _rewrite_children(
    node: LogicalNode, rule: Callable[[LogicalNode], LogicalNode]
) -> LogicalNode:
    if isinstance(node, LogicalProject):
        return LogicalProject(rule(node.child), node.keep)
    if isinstance(node, LogicalUnion):
        return LogicalUnion(tuple(rule(child) for child in node.operands))
    if isinstance(node, LogicalJoin):
        return LogicalJoin(tuple(rule(child) for child in node.operands))
    return node


def flatten_operators(node: LogicalNode) -> LogicalNode:
    """Merge nested unions into n-ary unions and nested joins into n-ary joins.

    Both operators are associative and commutative on mapping sets, so
    ``(a ∪ b) ∪ c`` becomes the 3-way union and ``(a ⋈ b) ⋈ c`` the 3-way
    join — the form the reordering rule and the k-way runtime operators
    want.
    """
    node = _rewrite_children(node, flatten_operators)
    for kind in (LogicalUnion, LogicalJoin):
        if isinstance(node, kind):
            operands: list[LogicalNode] = []
            for child in node.operands:
                if isinstance(child, kind):
                    operands.extend(child.operands)
                else:
                    operands.append(child)
            if len(operands) != len(node.operands):
                return kind(tuple(operands))
    return node


def _project(child: LogicalNode, keep: frozenset[str]) -> LogicalNode:
    """``π_keep(child)``, dropping the node when it would be trivial."""
    keep = keep & child.variables()
    if keep == child.variables():
        return child
    return LogicalProject(child, keep)


def push_projections(node: LogicalNode) -> LogicalNode:
    """Push projections down through unions and joins; merge adjacent ones.

    * ``π_Y(π_Z(e))``      → ``π_{Y∩Z}(e)``
    * ``π_Y(e1 ∪ e2)``     → ``π_Y(e1) ∪ π_Y(e2)``
    * ``π_Y(e1 ⋈ e2)``     → ``π_Y(π_{K1}(e1) ⋈ π_{K2}(e2))`` with
      ``Ki = (Y ∪ shared_i) ∩ var(ei)`` — every variable shared with a
      sibling stays, so compatibility checks see exactly the same spans
      (sound for partial mappings: two mappings can only disagree on a
      variable both sides may assign, which is always in ``shared_i``).
      The outer projection disappears when the pushed join already
      produces only variables of ``Y``.
    * trivial projections (``var(e) ⊆ Y``) are removed.
    """
    if isinstance(node, LogicalProject):
        child = node.child
        keep = node.keep & child.variables()
        if isinstance(child, LogicalProject):
            return push_projections(LogicalProject(child.child, keep & child.keep))
        if isinstance(child, LogicalUnion):
            return LogicalUnion(
                tuple(push_projections(_project(op, keep)) for op in child.operands)
            )
        if isinstance(child, LogicalJoin):
            operands = child.operands
            pushed: list[LogicalNode] = []
            for index, operand in enumerate(operands):
                siblings = frozenset().union(
                    *(
                        other.variables()
                        for position, other in enumerate(operands)
                        if position != index
                    )
                )
                keep_i = (keep | (operand.variables() & siblings)) & operand.variables()
                pushed.append(push_projections(_project(operand, keep_i)))
            inner = LogicalJoin(tuple(pushed))
            if inner.variables() <= keep:
                return inner
            return LogicalProject(inner, keep)
        if keep == child.variables():
            return push_projections(child)
        return LogicalProject(push_projections(child), keep)
    return _rewrite_children(node, push_projections)


def reorder_joins(
    node: LogicalNode, size_of: Callable[[LogicalNode], int]
) -> LogicalNode:
    """Order the operands of every join by ascending estimated automaton size.

    The fused route builds the Proposition 4.4 product pairwise left to
    right and the runtime hash join probes in the same order, so putting
    the smallest operands first keeps every intermediate small (the
    classic greedy join ordering).  The sort is stable: equal estimates
    keep their original relative order.
    """
    node = _rewrite_children(node, lambda child: reorder_joins(child, size_of))
    if isinstance(node, LogicalJoin):
        ordered = tuple(sorted(node.operands, key=size_of))
        if ordered != node.operands:
            return LogicalJoin(ordered)
    return node


def _signature(node: LogicalNode) -> tuple:
    """A structural signature used to detect whether a rewrite fired."""
    if isinstance(node, LogicalAtom):
        return ("atom", id(node.atom))
    if isinstance(node, LogicalProject):
        return ("project", tuple(sorted(node.keep)), _signature(node.child))
    kind = "union" if isinstance(node, LogicalUnion) else "join"
    return (kind, tuple(_signature(child) for child in node.operands))


# ---------------------------------------------------------------------- #
# Cost model
# ---------------------------------------------------------------------- #


def estimate_fused_states(
    node: LogicalNode, atom_states: Callable[[Atom], int]
) -> int:
    """Estimated state count of the fused automaton for *node*.

    Follows the size bounds of Proposition 4.4: projection is linear,
    union adds one fresh initial state, and the join product is quadratic
    (the product of the operand estimates).
    """
    if isinstance(node, LogicalAtom):
        return max(1, atom_states(node.atom))
    if isinstance(node, LogicalProject):
        return estimate_fused_states(node.child, atom_states)
    if isinstance(node, LogicalUnion):
        return 1 + sum(estimate_fused_states(child, atom_states) for child in node.operands)
    if isinstance(node, LogicalJoin):
        product = 1
        for child in node.operands:
            product *= estimate_fused_states(child, atom_states)
        return product
    raise CompilationError(f"unsupported logical node {node!r}")


def provably_functional(
    node: LogicalNode, atom_functional: Callable[[Atom], bool]
) -> bool:
    """Whether the subtree is functional *by structure*.

    Atoms are decided exactly (``is_functional`` on the compiled atom);
    projections of functional spanners stay functional; a join of
    functional spanners is functional; a union is only provably functional
    when every branch is and all branches produce the **same** variable
    set (otherwise some output mapping misses a variable).
    """
    if isinstance(node, LogicalAtom):
        return atom_functional(node.atom)
    if isinstance(node, LogicalProject):
        return provably_functional(node.child, atom_functional)
    if isinstance(node, LogicalJoin):
        return all(provably_functional(child, atom_functional) for child in node.operands)
    if isinstance(node, LogicalUnion):
        if not all(provably_functional(child, atom_functional) for child in node.operands):
            return False
        variable_sets = {child.variables() for child in node.operands}
        return len(variable_sets) == 1
    raise CompilationError(f"unsupported logical node {node!r}")


# ---------------------------------------------------------------------- #
# The optimizer
# ---------------------------------------------------------------------- #


@dataclass
class AtomProfile:
    """Everything the optimizer measured about one atom, computed once."""

    atom: Atom
    num_states: int
    functional: bool | None = None  # None = not needed (no joins / unchecked)
    eva: object = field(default=None, repr=False)  # the compiled atom eVA


@dataclass
class OptimizedPlan:
    """The output of :func:`optimize`: logical trees plus the physical plan."""

    expression: SpannerExpression
    logical: LogicalNode
    rewritten: LogicalNode
    applied_rules: tuple[str, ...]
    physical: PhysicalOperator
    atom_profiles: tuple[AtomProfile, ...]
    seconds: float
    _estimates: dict[int, int] = field(default_factory=dict, repr=False)

    @property
    def is_hybrid(self) -> bool:
        """Whether the plan cut at least one edge (has runtime operators)."""
        return not isinstance(self.physical, FusedLeaf)

    def explain(self) -> str:
        """Human-readable logical → physical rendering (``repro explain``)."""
        annotate = (
            (lambda node: f"est {self._estimates[id(node)]} states")
            if self._estimates
            else None
        )
        lines = [
            "logical plan:",
            render_logical(self.logical),
            "",
            f"rewrites applied: {', '.join(self.applied_rules) or 'none'}",
        ]
        if self.applied_rules:
            lines += ["", "optimized logical plan:", render_logical(self.rewritten, annotate)]
        lines += ["", "physical plan:", render_physical(self.physical)]
        return "\n".join(lines)


def _validate_join_atoms(
    rewritten: LogicalNode, functional_of: Callable[[Atom], bool]
) -> None:
    """Check every atom under a join once; raise for non-functional ones."""
    checked: set[int] = set()
    for node in rewritten.walk():
        if not isinstance(node, LogicalJoin):
            continue
        for operand in node.operands:
            for atom in operand.atoms():
                if id(atom) in checked:
                    continue
                checked.add(id(atom))
                if not functional_of(atom):
                    raise CompilationError(
                        f"join operand atom {atom!r} is not functional: the "
                        "automaton-level join construction (Proposition 4.4) "
                        "requires functional spanners and would silently "
                        "produce a wrong automaton.  Pass unchecked=True to "
                        "skip this validation (at your own risk)."
                    )


def optimize(
    expression: SpannerExpression,
    alphabet: Iterable[str] = (),
    *,
    unchecked: bool = False,
    enable_rewrites: bool = True,
    join_fuse_threshold: int = DEFAULT_JOIN_FUSE_THRESHOLD,
    union_fuse_threshold: int = DEFAULT_UNION_FUSE_THRESHOLD,
) -> OptimizedPlan:
    """Optimize *expression* into a physical plan for *alphabet*.

    The returned plan's :attr:`~OptimizedPlan.physical` tree is not yet
    compiled — call ``physical.prepare(alphabet_key)`` (the facade does)
    before executing documents through it.

    ``join_fuse_threshold`` / ``union_fuse_threshold`` bound the estimated
    state count above which a join / union is cut; ``0`` forces every
    operator to execute at runtime and a very large value forces full
    fusion (the monolithic Proposition 4.5/4.6 route).  ``enable_rewrites``
    exists so tests can pin the cost model with and without the rewrite
    pass.  ``unchecked`` skips the per-atom functional-join validation.
    """
    if not isinstance(expression, SpannerExpression):
        raise CompilationError(f"cannot optimize {expression!r}: not an algebra expression")
    start = time.perf_counter()
    alphabet = frozenset(alphabet)

    profiles: dict[int, AtomProfile] = {}

    def profile_of(atom: Atom) -> AtomProfile:
        profile = profiles.get(id(atom))
        if profile is None:
            compiled = compile_atom(atom, alphabet)
            profile = AtomProfile(atom, statistics(compiled).num_states, eva=compiled)
            profiles[id(atom)] = profile
        return profile

    def functional_of(atom: Atom) -> bool:
        profile = profile_of(atom)
        if profile.functional is None:
            profile.functional = is_functional(profile.eva)
        return profile.functional

    def atom_states(atom: Atom) -> int:
        return profile_of(atom).num_states

    logical = logical_from_expression(expression)

    applied: list[str] = []
    rewritten = logical
    if enable_rewrites:
        for name, rule in (
            ("flatten-operators", flatten_operators),
            ("push-projections", push_projections),
            (
                "reorder-joins",
                lambda node: reorder_joins(
                    node, lambda child: estimate_fused_states(child, atom_states)
                ),
            ),
        ):
            candidate = rule(rewritten)
            if _signature(candidate) != _signature(rewritten):
                applied.append(name)
                rewritten = candidate

    if not unchecked:
        _validate_join_atoms(rewritten, functional_of)

    estimates: dict[int, int] = {}
    for node in rewritten.walk():
        estimates[id(node)] = estimate_fused_states(node, atom_states)

    # Bottom-up cut decisions.  A subtree that stays fusible is carried as
    # its logical node; materializing the FusedLeaf happens only when a
    # parent cuts (or at the root).
    def as_physical(node: LogicalNode, fusible: bool, physical: PhysicalOperator | None):
        if fusible:
            return FusedLeaf(
                expression_from_logical(node),
                reason=f"fused subtree (est {estimates[id(node)]} states)",
            )
        return physical

    def build(node: LogicalNode) -> tuple[bool, PhysicalOperator | None]:
        if isinstance(node, LogicalAtom):
            return True, None
        if isinstance(node, LogicalProject):
            child_fusible, child_physical = build(node.child)
            if child_fusible:
                return True, None
            return False, ArenaProject(
                child_physical,
                node.keep,
                reason="child cut: project the runtime result's arena cells",
            )
        built = [(child, *build(child)) for child in node.operands]
        all_fusible = all(fusible for _child, fusible, _physical in built)
        estimate = estimates[id(node)]
        if isinstance(node, LogicalUnion):
            if all_fusible and estimate <= union_fuse_threshold:
                return True, None
            reason = (
                f"est {estimate} states > union threshold {union_fuse_threshold}"
                if all_fusible
                else "an operand was cut: merge result sets at runtime"
            )
            return False, MergeUnion(
                tuple(as_physical(*entry) for entry in built), reason=reason
            )
        if isinstance(node, LogicalJoin):
            # ``unchecked`` skips the (possibly expensive) per-atom
            # is_functional computation by *assuming* atoms functional; the
            # structural guard stays on either way — it is free, and fusing
            # a join over e.g. a union with mismatched branch variables is
            # provably wrong no matter what the atoms are.
            assume = (lambda _atom: True) if unchecked else functional_of
            functional = all(
                provably_functional(child, assume) for child in node.operands
            )
            if all_fusible and functional and estimate <= join_fuse_threshold:
                return True, None
            if not functional:
                reason = (
                    "an operand is not provably functional: the Prop. 4.4 "
                    "product requires functional spanners, join at runtime"
                )
            elif not all_fusible:
                reason = "an operand was cut: hash-join result sets at runtime"
            else:
                reason = (
                    f"est product {estimate} states > join threshold "
                    f"{join_fuse_threshold}: avoid the quadratic product + "
                    "determinization, hash-join at runtime"
                )
            return False, HashJoin(
                tuple(as_physical(*entry) for entry in built), reason=reason
            )
        raise CompilationError(f"unsupported logical node {node!r}")

    root_fusible, root_physical = build(rewritten)
    physical = as_physical(rewritten, root_fusible, root_physical)

    return OptimizedPlan(
        expression=expression,
        logical=logical,
        rewritten=rewritten,
        applied_rules=tuple(applied),
        physical=physical,
        atom_profiles=tuple(profiles.values()),
        seconds=time.perf_counter() - start,
        _estimates=estimates,
    )
