"""Set-level algebra operators over sets of mappings.

These implement the semantics of the spanner algebra (Section 2 of the
paper) directly on materialized mapping sets:

* ``⋈`` — natural join of compatible mappings,
* ``∪`` — union,
* ``π_Y`` — projection onto a set of variables.

They serve both as the reference implementation against which the
automaton-level constructions (:mod:`repro.algebra.automaton_ops`) are
tested, and as a fallback evaluation strategy for small inputs.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.mappings import Mapping

__all__ = ["join_mapping_sets", "union_mapping_sets", "project_mapping_set"]


def join_mapping_sets(left: Iterable[Mapping], right: Iterable[Mapping]) -> set[Mapping]:
    """``M1 ⋈ M2``: unions of all compatible pairs of mappings.

    The pairs are matched on their shared variables.  A simple hash join on
    the shared-variable restriction keeps the common case close to linear
    instead of quadratic.
    """
    left = list(left)
    right = list(right)
    if not left or not right:
        return set()

    shared = frozenset.intersection(
        *(mapping.domain() for mapping in left)
    ) & frozenset.intersection(*(mapping.domain() for mapping in right))

    # Bucket the right side by its values on the shared variables that are
    # guaranteed to be present on both sides; residual compatibility (on
    # variables present only in some mappings) is re-checked pairwise.
    buckets: dict[tuple, list[Mapping]] = {}
    for mapping in right:
        key = tuple(sorted((variable, mapping[variable]) for variable in shared))
        buckets.setdefault(key, []).append(mapping)

    result: set[Mapping] = set()
    for mapping in left:
        key = tuple(sorted((variable, mapping[variable]) for variable in shared))
        for candidate in buckets.get(key, ()):
            if mapping.compatible(candidate):
                result.add(mapping.union(candidate))
    return result


def union_mapping_sets(left: Iterable[Mapping], right: Iterable[Mapping]) -> set[Mapping]:
    """``M1 ∪ M2``."""
    return set(left) | set(right)


def project_mapping_set(mappings: Iterable[Mapping], variables: Iterable[str]) -> set[Mapping]:
    """``π_Y(M)``: restrict every mapping to the variables in *variables*."""
    keep = frozenset(variables)
    return {mapping.restrict(keep) for mapping in mappings}
