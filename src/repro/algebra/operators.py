"""Set-level algebra operators over sets of mappings.

These implement the semantics of the spanner algebra (Section 2 of the
paper) directly on materialized mapping sets:

* ``⋈`` — natural join of compatible mappings,
* ``∪`` — union,
* ``π_Y`` — projection onto a set of variables.

They serve both as the reference implementation against which the
automaton-level constructions (:mod:`repro.algebra.automaton_ops`) are
tested, and as a fallback evaluation strategy for small inputs.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.mappings import Mapping

__all__ = [
    "hash_join_mappings",
    "join_mapping_sets",
    "union_mapping_sets",
    "project_mapping_set",
]


def hash_join_mappings(
    left: Iterable[Mapping], right: Iterable[Mapping]
) -> list[Mapping]:
    """``M1 ⋈ M2`` as a hash join: build on the smaller side, probe with the larger.

    Mappings are bucketed on the variables assigned by *every* mapping of
    both sides (with partial mappings, only those are safe bucketing
    keys); residual compatibility on sometimes-assigned variables is
    re-checked pairwise inside a bucket.  The result is deduplicated and
    ordered by first production, so callers that stream it (the runtime
    hash-join operator) are deterministic.  This is the single
    implementation of the join; :func:`join_mapping_sets` wraps it.
    """
    left = list(left)
    right = list(right)
    if not left or not right:
        return []
    shared = frozenset.intersection(
        *(mapping.domain() for mapping in left)
    ) & frozenset.intersection(*(mapping.domain() for mapping in right))

    build, probe = (left, right) if len(left) <= len(right) else (right, left)
    buckets: dict[tuple, list[Mapping]] = {}
    for mapping in build:
        key = tuple(sorted((variable, mapping[variable]) for variable in shared))
        buckets.setdefault(key, []).append(mapping)

    out: list[Mapping] = []
    seen: set[Mapping] = set()
    for mapping in probe:
        key = tuple(sorted((variable, mapping[variable]) for variable in shared))
        for candidate in buckets.get(key, ()):
            if mapping.compatible(candidate):
                joined = mapping.union(candidate)
                if joined not in seen:
                    seen.add(joined)
                    out.append(joined)
    return out


def join_mapping_sets(left: Iterable[Mapping], right: Iterable[Mapping]) -> set[Mapping]:
    """``M1 ⋈ M2``: unions of all compatible pairs of mappings."""
    return set(hash_join_mappings(left, right))


def union_mapping_sets(left: Iterable[Mapping], right: Iterable[Mapping]) -> set[Mapping]:
    """``M1 ∪ M2``."""
    return set(left) | set(right)


def project_mapping_set(mappings: Iterable[Mapping], variables: Iterable[str]) -> set[Mapping]:
    """``π_Y(M)``: restrict every mapping to the variables in *variables*."""
    keep = frozenset(variables)
    return {mapping.restrict(keep) for mapping in mappings}
