"""Automaton-level algebra operators on extended VA (Proposition 4.4).

The paper shows that for *functional* extended VA the algebra operators can
be applied directly on the automata with modest size increases:

* join      — a product construction, quadratic in size,
* union     — linear (or quadratic if determinism must be preserved,
              Lemma B.2),
* projection — linear (markers of projected-away variables are dropped and
              the resulting ε-transitions eliminated).

The constructions below follow the proofs of Proposition 4.4 and
Lemma B.2.  They are semantics preserving for functional inputs, which the
integration and property tests verify against the set-level operators of
:mod:`repro.algebra.operators`.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.core.errors import CompilationError
from repro.automata.analysis import trim
from repro.automata.eva import ExtendedVA
from repro.automata.markers import MarkerSet

__all__ = ["join_eva", "union_eva", "union_deterministic_eva", "project_eva"]

State = Hashable


def join_eva(left: ExtendedVA, right: ExtendedVA) -> ExtendedVA:
    """``A1 ⋈ A2`` for functional extended VA (Proposition 4.4).

    The automata run in parallel; marker transitions over the *shared*
    variables must be taken simultaneously and agree on the shared markers,
    while markers of private variables may be executed by either side
    alone.  The result has at most ``|Q1| × |Q2|`` states.
    """
    if not left.has_initial or not right.has_initial:
        raise CompilationError("join requires automata with initial states")
    shared_variables = left.variables() & right.variables()

    product = ExtendedVA()
    initial = (left.initial, right.initial)
    product.set_initial(initial)
    for final_left in left.finals:
        for final_right in right.finals:
            product.add_final((final_left, final_right))

    frontier = [initial]
    seen = {initial}
    while frontier:
        state_left, state_right = frontier.pop()
        source = (state_left, state_right)
        successors: list[tuple[object, tuple[State, State]]] = []

        # Letter transitions: both sides read the same character.
        right_letters: dict[str, list[State]] = {}
        for symbol, target in right.letter_transitions_from(state_right):
            right_letters.setdefault(symbol, []).append(target)
        for symbol, target_left in left.letter_transitions_from(state_left):
            for target_right in right_letters.get(symbol, ()):
                successors.append((symbol, (target_left, target_right)))

        left_markers = list(left.variable_transitions_from(state_left))
        right_markers = list(right.variable_transitions_from(state_right))

        # Markers private to the left automaton.
        for marker_set, target_left in left_markers:
            if not (marker_set.variables() & shared_variables):
                successors.append((marker_set, (target_left, state_right)))
        # Markers private to the right automaton.
        for marker_set, target_right in right_markers:
            if not (marker_set.variables() & shared_variables):
                successors.append((marker_set, (state_left, target_right)))
        # Simultaneous transitions agreeing on the shared markers.
        for marker_set_left, target_left in left_markers:
            shared_left = marker_set_left.restrict(shared_variables)
            for marker_set_right, target_right in right_markers:
                shared_right = marker_set_right.restrict(shared_variables)
                if shared_left == shared_right:
                    successors.append(
                        (marker_set_left.union(marker_set_right), (target_left, target_right))
                    )

        for label, successor in successors:
            if isinstance(label, MarkerSet):
                product.add_variable_transition(source, label, successor)
            else:
                product.add_letter_transition(source, label, successor)
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return trim(product)


def union_eva(left: ExtendedVA, right: ExtendedVA) -> ExtendedVA:
    """``A1 ∪ A2``: linear-size union (Proposition 4.4).

    The two automata are copied side by side (states are tagged to keep
    them disjoint) and a fresh initial state replicates the outgoing
    transitions of both original initial states, avoiding ε-transitions.
    """
    if not left.has_initial or not right.has_initial:
        raise CompilationError("union requires automata with initial states")
    result = ExtendedVA()
    fresh_initial = ("∪", "initial")
    result.set_initial(fresh_initial)

    def copy(automaton: ExtendedVA, tag: str) -> None:
        for state in automaton.states:
            result.add_state((tag, state))
        for state in automaton.finals:
            result.add_final((tag, state))
        for source, label, target in automaton.transitions():
            if isinstance(label, MarkerSet):
                result.add_variable_transition((tag, source), label, (tag, target))
            else:
                result.add_letter_transition((tag, source), label, (tag, target))
        # Replicate the initial state's outgoing transitions on the fresh
        # initial state.
        for symbol, target in automaton.letter_transitions_from(automaton.initial):
            result.add_letter_transition(fresh_initial, symbol, (tag, target))
        for marker_set, target in automaton.variable_transitions_from(automaton.initial):
            result.add_variable_transition(fresh_initial, marker_set, (tag, target))
        if automaton.initial in automaton.finals:
            result.add_final(fresh_initial)

    copy(left, "left")
    copy(right, "right")
    return result


def union_deterministic_eva(left: ExtendedVA, right: ExtendedVA) -> ExtendedVA:
    """Determinism-preserving union of two deterministic feVA (Lemma B.2).

    The automata run in parallel for as long as both have a transition on
    the current label; when exactly one of them can move, the run "branches
    off" into a copy of that automaton alone.  The result is deterministic
    whenever both inputs are, and has ``O(|Q1| × |Q2|)`` states.
    """
    if not left.has_initial or not right.has_initial:
        raise CompilationError("union requires automata with initial states")

    result = ExtendedVA()
    initial = ("both", left.initial, right.initial)
    result.set_initial(initial)

    def add_single_copy(automaton: ExtendedVA, tag: str) -> None:
        for state in automaton.finals:
            result.add_final((tag, state))
        for source, label, target in automaton.transitions():
            if isinstance(label, MarkerSet):
                result.add_variable_transition((tag, source), label, (tag, target))
            else:
                result.add_letter_transition((tag, source), label, (tag, target))

    add_single_copy(left, "left")
    add_single_copy(right, "right")

    frontier = [(left.initial, right.initial)]
    seen = {(left.initial, right.initial)}
    while frontier:
        state_left, state_right = frontier.pop()
        source = ("both", state_left, state_right)
        if state_left in left.finals or state_right in right.finals:
            result.add_final(source)

        labels_left: dict[object, State] = {}
        for symbol, target in left.letter_transitions_from(state_left):
            labels_left[symbol] = target
        for marker_set, target in left.variable_transitions_from(state_left):
            labels_left[marker_set] = target
        labels_right: dict[object, State] = {}
        for symbol, target in right.letter_transitions_from(state_right):
            labels_right[symbol] = target
        for marker_set, target in right.variable_transitions_from(state_right):
            labels_right[marker_set] = target

        for label, target_left in labels_left.items():
            target_right = labels_right.get(label)
            if target_right is not None:
                successor = ("both", target_left, target_right)
                if (target_left, target_right) not in seen:
                    seen.add((target_left, target_right))
                    frontier.append((target_left, target_right))
            else:
                successor = ("left", target_left)
            if isinstance(label, MarkerSet):
                result.add_variable_transition(source, label, successor)
            else:
                result.add_letter_transition(source, label, successor)
        for label, target_right in labels_right.items():
            if label in labels_left:
                continue
            successor = ("right", target_right)
            if isinstance(label, MarkerSet):
                result.add_variable_transition(source, label, successor)
            else:
                result.add_letter_transition(source, label, successor)
    return trim(result)


def project_eva(automaton: ExtendedVA, variables: Iterable[str]) -> ExtendedVA:
    """``π_Y(A)``: drop the markers of projected-away variables (Proposition 4.4).

    Marker sets are restricted to the kept variables.  A transition whose
    restricted set becomes empty turns into an ε-transition; because an eVA
    run performs at most one variable transition per document position,
    such an ε may be composed with **at most one** following letter
    transition (or with acceptance at the end of the document), never with
    another variable transition.  The elimination below therefore:

    * keeps non-empty restricted marker transitions unchanged,
    * adds a letter transition ``(q, a, p)`` whenever ``q --ε--> s --a--> p``,
    * marks ``q`` accepting whenever ``q --ε--> p`` with ``p`` accepting.

    The construction is linear in ``|A|``.
    """
    if not automaton.has_initial:
        raise CompilationError("projection requires an automaton with an initial state")
    keep = frozenset(variables)

    epsilon_successors: dict[State, set[State]] = {}
    result = ExtendedVA()
    result.set_initial(automaton.initial)
    for state in automaton.finals:
        result.add_final(state)

    for source, label, target in automaton.transitions():
        if isinstance(label, MarkerSet):
            restricted = label.restrict(keep)
            if restricted.non_empty():
                result.add_variable_transition(source, restricted, target)
            else:
                epsilon_successors.setdefault(source, set()).add(target)
        else:
            result.add_letter_transition(source, label, target)

    finals = automaton.finals
    for source, silent_targets in epsilon_successors.items():
        for silent in silent_targets:
            if silent in finals:
                result.add_final(source)
            for symbol, target in automaton.letter_transitions_from(silent):
                result.add_letter_transition(source, symbol, target)
    return trim(result)
