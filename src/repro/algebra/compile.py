"""Compilation and evaluation of spanner algebra expressions.

:func:`compile_expression` turns an algebra expression into a single
extended VA by applying the automaton-level constructions of
Proposition 4.4 bottom-up (the route taken by Propositions 4.5 and 4.6).
The result can then be made deterministic and sequential with
:func:`repro.automata.transforms.to_deterministic_sequential_eva` and fed
to the constant-delay algorithm — which is exactly what the
:class:`~repro.spanners.Spanner` facade does.

:func:`evaluate_expression_setwise` is the reference evaluation: each atom
is evaluated independently (with the exponential run-based semantics) and
the operators are applied on materialized mapping sets.  The tests compare
the two routes.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.errors import CompilationError
from repro.core.mappings import Mapping
from repro.automata.analysis import is_functional
from repro.automata.eva import ExtendedVA
from repro.automata.transforms import va_to_eva
from repro.automata.va import VariableSetAutomaton
from repro.algebra.automaton_ops import join_eva, project_eva, union_eva
from repro.algebra.expressions import Atom, Join, Projection, SpannerExpression, UnionExpr
from repro.algebra.operators import (
    join_mapping_sets,
    project_mapping_set,
    union_mapping_sets,
)
from repro.regex.ast import RegexNode
from repro.regex.compiler import compile_to_va

__all__ = ["compile_atom", "compile_expression", "evaluate_expression_setwise"]


def compile_atom(atom: Atom, alphabet: Iterable[str] | None = None) -> ExtendedVA:
    """Compile an atomic spanner into an extended VA."""
    source = atom.source
    if isinstance(source, RegexNode):
        return va_to_eva(compile_to_va(source, alphabet))
    if isinstance(source, VariableSetAutomaton):
        return va_to_eva(source)
    if isinstance(source, ExtendedVA):
        return source
    raise CompilationError(f"unsupported atom source {source!r}")


def compile_expression(
    expression: SpannerExpression,
    alphabet: Iterable[str] | None = None,
    *,
    check_functional_joins: bool = False,
) -> ExtendedVA:
    """Compile an algebra expression into a single extended VA.

    Parameters
    ----------
    expression:
        The algebra expression.
    alphabet:
        Alphabet over which wildcards of regex atoms expand.
    check_functional_joins:
        The join construction of Proposition 4.4 is stated for *functional*
        eVA; enabling this flag verifies the property on both join operands
        and raises :class:`~repro.core.errors.CompilationError` otherwise.
        The check can be exponential in the number of variables, hence the
        default of ``False``.
    """
    if isinstance(expression, Atom):
        return compile_atom(expression, alphabet)
    if isinstance(expression, Projection):
        child = compile_expression(
            expression.child, alphabet, check_functional_joins=check_functional_joins
        )
        return project_eva(child, expression.keep)
    if isinstance(expression, UnionExpr):
        left = compile_expression(
            expression.left, alphabet, check_functional_joins=check_functional_joins
        )
        right = compile_expression(
            expression.right, alphabet, check_functional_joins=check_functional_joins
        )
        return union_eva(left, right)
    if isinstance(expression, Join):
        left = compile_expression(
            expression.left, alphabet, check_functional_joins=check_functional_joins
        )
        right = compile_expression(
            expression.right, alphabet, check_functional_joins=check_functional_joins
        )
        if check_functional_joins:
            for side, automaton in (("left", left), ("right", right)):
                if not is_functional(automaton):
                    raise CompilationError(
                        f"the {side} operand of a join is not functional; "
                        "the automaton-level join requires functional spanners"
                    )
        return join_eva(left, right)
    raise CompilationError(f"unsupported expression {expression!r}")


def evaluate_expression_setwise(
    expression: SpannerExpression,
    document: object,
    alphabet: Iterable[str] | None = None,
) -> set[Mapping]:
    """Reference evaluation: materialize each atom, then apply the operators.

    When *alphabet* is omitted, the characters of the document are used, so
    that wildcard atoms can be compiled.
    """
    if alphabet is None:
        from repro.core.documents import as_text

        alphabet = frozenset(as_text(document))
    if isinstance(expression, Atom):
        return set(compile_atom(expression, alphabet).evaluate(document))
    if isinstance(expression, Projection):
        child = evaluate_expression_setwise(expression.child, document, alphabet)
        return project_mapping_set(child, expression.keep)
    if isinstance(expression, UnionExpr):
        return union_mapping_sets(
            evaluate_expression_setwise(expression.left, document, alphabet),
            evaluate_expression_setwise(expression.right, document, alphabet),
        )
    if isinstance(expression, Join):
        return join_mapping_sets(
            evaluate_expression_setwise(expression.left, document, alphabet),
            evaluate_expression_setwise(expression.right, document, alphabet),
        )
    raise CompilationError(f"unsupported expression {expression!r}")
