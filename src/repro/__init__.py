"""Constant delay enumeration for regular document spanners.

This package is a from-scratch reproduction of the system described in
*"Constant delay algorithms for regular document spanners"* (Florenzano,
Riveros, Ugarte, Vansummeren and Vrgoč, 2018).  It provides:

* the data model of documents, spans and mappings (:mod:`repro.core`),
* variable-set automata and extended variable-set automata together with
  all the translations studied in the paper (:mod:`repro.automata`),
* regex formulas with a parser, a reference semantics and a compiler to
  automata (:mod:`repro.regex`),
* the spanner algebra with both set-level and automaton-level operators
  (:mod:`repro.algebra`),
* the constant-delay evaluation algorithm (:mod:`repro.enumeration`),
* output counting and the Census reduction (:mod:`repro.counting`),
* baseline enumeration algorithms used for comparison
  (:mod:`repro.baselines`),
* a high level :class:`~repro.spanners.Spanner` facade
  (:mod:`repro.spanners`),
* synthetic workload generators used by the benchmark harness
  (:mod:`repro.workloads`), and
* a long-lived asyncio extraction service with a shared plan cache,
  admission control and ``/metrics`` (:mod:`repro.server`, ``repro serve``).

Quickstart
----------

>>> from repro import Spanner
>>> spanner = Spanner.from_regex(".* name{[A-Z][a-z]+} .*")
>>> sorted(m["name"].content("hi Ada !") for m in spanner.evaluate("hi Ada !"))
['Ada']
"""

from repro.core.documents import Document, DocumentCollection
from repro.core.errors import (
    CompilationError,
    EvaluationError,
    NotDeterministicError,
    NotSequentialError,
    ReproError,
    SpanError,
    StreamingError,
)
from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.spanners.spanner import Spanner

# After the facade import the runtime package is fully initialized, so
# this is a plain attribute lookup (importing it first would enter the
# runtime ↔ algebra import cycle through the wrong door).
from repro.runtime.plan import CacheStats, PlanCache  # noqa: E402

__all__ = [
    "CacheStats",
    "CompilationError",
    "Document",
    "DocumentCollection",
    "EvaluationError",
    "Mapping",
    "NotDeterministicError",
    "NotSequentialError",
    "PlanCache",
    "ReproError",
    "Span",
    "SpanError",
    "Spanner",
    "StreamingError",
    "__version__",
]

__version__ = "1.0.0"
