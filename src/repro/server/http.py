"""The asyncio HTTP front-end of the extraction service.

A deliberately small HTTP/1.1 implementation over ``asyncio.start_server``
— no web framework, because the repository's no-new-dependencies rule is
a feature: the server is ~one screen of framing code over the
:class:`~repro.server.service.SpannerService` it fronts.

Routes:

``POST /v1/stream``
    One extraction session per request (see
    :mod:`repro.server.protocol`).  The request body — ``Content-Length``
    or ``Transfer-Encoding: chunked`` — is consumed **as it arrives**,
    one NDJSON event at a time, with an ``await``-point between chunks;
    the response streams back with chunked transfer encoding, one NDJSON
    line per mapping the moment it settles.  Admission control answers
    ``429`` (with ``Retry-After``) past the session cap; a session idle
    longer than the configured timeout is closed with an in-band error
    event; per-session fed-bytes caps likewise surface as in-band
    errors.  Backpressure is structural: the server only reads as fast
    as it evaluates, and ``await writer.drain()`` after each delivery
    stops evaluation when the client stops reading.

``GET /metrics``
    The JSON counter snapshot: request totals, session lifecycle,
    plan-cache hit/miss/eviction counters and p50/p99 of recent
    per-request latencies (see :mod:`repro.server.metrics`).

``GET /healthz``
    Liveness probe.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import signal
import time
from typing import Awaitable, Callable

from repro.core.errors import ReproError, ResourceLimitError, StreamingError
from repro.server.protocol import (
    MAX_EVENT_BYTES,
    ProtocolError,
    mapping_event,
    parse_event,
    parse_open,
)
from repro.server.service import (
    AdmissionError,
    ServerConfig,
    SessionLimitError,
    SpannerService,
)

__all__ = ["ReproServer", "serve_forever"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Bytes pulled off the socket per read while scanning for body lines.
_READ_SIZE = 65536


class _HttpError(Exception):
    """An HTTP-level failure to answer with *status* before streaming."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _BodyStream:
    """NDJSON lines out of an HTTP/1.1 body, as the bytes arrive.

    Supports ``Content-Length`` and ``Transfer-Encoding: chunked``
    framing; :meth:`readline` returns one line (without the newline) per
    call and ``None`` at end of body.  The internal buffer is bounded by
    :data:`~repro.server.protocol.MAX_EVENT_BYTES` — a single line
    longer than that is a protocol violation, not a reason to balloon.
    """

    def __init__(self, reader: asyncio.StreamReader, headers: dict[str, str]) -> None:
        self._reader = reader
        self._buffer = b""
        self._done = False
        encoding = headers.get("transfer-encoding", "").lower()
        self._chunked = "chunked" in encoding
        self._remaining = 0
        if not self._chunked:
            try:
                self._remaining = int(headers.get("content-length", "0"))
            except ValueError:
                raise _HttpError(400, "malformed Content-Length header") from None
            if self._remaining < 0:
                raise _HttpError(400, "negative Content-Length header")

    async def _more(self) -> bytes:
        if self._chunked:
            size_line = await self._reader.readline()
            if not size_line:
                return b""
            try:
                size = int(size_line.split(b";", 1)[0].strip() or b"0", 16)
            except ValueError:
                raise _HttpError(400, "malformed chunked framing") from None
            if size == 0:
                # Consume any trailers up to the blank line.
                while True:
                    trailer = await self._reader.readline()
                    if trailer in (b"\r\n", b"\n", b""):
                        break
                return b""
            data = await self._reader.readexactly(size)
            await self._reader.readexactly(2)  # the CRLF after the chunk
            return data
        if self._remaining <= 0:
            return b""
        data = await self._reader.read(min(_READ_SIZE, self._remaining))
        if not data:
            self._remaining = 0
            return b""
        self._remaining -= len(data)
        return data

    async def readline(self) -> bytes | None:
        """The next body line, or ``None`` once the body is exhausted."""
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = self._buffer[:newline].rstrip(b"\r")
                self._buffer = self._buffer[newline + 1 :]
                if not line:
                    continue  # blank lines between events are tolerated
                return line
            if self._done:
                if self._buffer:
                    line = self._buffer.rstrip(b"\r")
                    self._buffer = b""
                    if line:
                        return line
                return None
            if len(self._buffer) > MAX_EVENT_BYTES:
                raise ProtocolError(
                    f"event line exceeds the {MAX_EVENT_BYTES}-byte bound"
                )
            try:
                data = await self._more()
            except asyncio.IncompleteReadError:
                data = b""
            if not data:
                self._done = True
            else:
                self._buffer += data


def _head(status: int, headers: dict[str, str]) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


class ReproServer:
    """The asyncio server: bind with :meth:`start`, stop by closing it."""

    def __init__(self, service: SpannerService | None = None) -> None:
        self.service = service if service is not None else SpannerService()
        self.config: ServerConfig = self.service.config
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> "ReproServer":
        """Bind and start accepting connections (raises ``OSError`` on failure)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        return self

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return int(self._server.sockets[0].getsockname()[1])

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_until_cancelled(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.perf_counter()
        status = 500
        try:
            method, path, headers = await self._read_head(reader)
            if path == "/metrics" and method == "GET":
                status = await self._respond_json(
                    writer, 200, self.service.metrics_snapshot()
                )
            elif path == "/healthz" and method == "GET":
                status = await self._respond_json(writer, 200, {"status": "ok"})
            elif path == "/v1/stream":
                if method != "POST":
                    status = await self._respond_json(
                        writer, 405, {"error": "use POST for /v1/stream"}
                    )
                else:
                    status = await self._stream_session(reader, writer, headers)
            else:
                status = await self._respond_json(
                    writer, 404, {"error": f"unknown path {path!r}"}
                )
        except _HttpError as error:
            status = await self._respond_json(
                writer, error.status, {"error": str(error)}, best_effort=True
            )
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            status = 0  # client went away mid-exchange; nothing to answer
        finally:
            self.service.metrics.record_request(status)
            self.service.metrics.record_latency(time.perf_counter() - started)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str]]:
        try:
            raw = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), self.config.idle_timeout
            )
        except asyncio.TimeoutError:
            raise _HttpError(408, "timed out waiting for the request head") from None
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise _HttpError(400, "malformed or truncated request head") from None
        lines = raw.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {lines[0]!r}")
        method, path, _version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, separator, value = line.partition(":")
            if not separator:
                raise _HttpError(400, f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), path, headers

    async def _respond_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        extra_headers: dict[str, str] | None = None,
        best_effort: bool = False,
    ) -> int:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
            "Connection": "close",
        }
        if extra_headers:
            headers.update(extra_headers)
        try:
            writer.write(_head(status, headers) + body)
            await writer.drain()
        except (ConnectionError, OSError):
            if not best_effort:
                raise
        return status

    # ------------------------------------------------------------------ #
    # The session endpoint
    # ------------------------------------------------------------------ #

    async def _stream_session(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        headers: dict[str, str],
    ) -> int:
        config = self.config
        body = _BodyStream(reader, headers)

        async def next_line() -> bytes | None:
            return await asyncio.wait_for(body.readline(), config.idle_timeout)

        try:
            first = await next_line()
        except asyncio.TimeoutError:
            return await self._respond_json(
                writer, 408, {"error": "timed out waiting for the opening event"}
            )
        if first is None:
            return await self._respond_json(
                writer, 400, {"error": "empty body: the first line opens the session"}
            )
        try:
            request = parse_open(first)
        except ProtocolError as error:
            return await self._respond_json(writer, 400, {"error": str(error)})
        try:
            session = self.service.open_session(request)
        except AdmissionError as error:
            return await self._respond_json(
                writer,
                429,
                {"error": str(error), "retry_after": error.retry_after},
                # Retry-After is delta-seconds; round *up* so a client
                # honouring it never retries before the window reopens
                # (int() truncated 0.8s to 0 and then "or 1" masked only
                # the zero case, while 1.2s became a too-early 1).
                extra_headers={
                    "Retry-After": str(max(1, math.ceil(error.retry_after)))
                },
            )
        except ReproError as error:
            return await self._respond_json(writer, 400, {"error": str(error)})

        writer.write(
            _head(
                200,
                {
                    "Content-Type": "application/x-ndjson",
                    "Transfer-Encoding": "chunked",
                    "Connection": "close",
                },
            )
        )

        async def emit(payload: dict) -> None:
            line = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            writer.write(b"%x\r\n" % len(line) + line + b"\r\n")
            await writer.drain()

        try:
            await emit(
                {
                    "ready": True,
                    "session": session.session_id,
                    "variables": list(session.variables),
                    "plan_cache": session.cache_outcome,
                    "emit": session.emit,
                }
            )
            ended = False
            while not ended:
                try:
                    line = await next_line()
                except asyncio.TimeoutError:
                    self.service.metrics.session_expired()
                    await emit(
                        {
                            "error": "session idle for longer than "
                            f"{config.idle_timeout:g}s",
                            "code": "idle_timeout",
                        }
                    )
                    return 200
                if line is None:
                    break  # end of body: implicit finish
                try:
                    event = parse_event(line)
                except ProtocolError as error:
                    self.service.metrics.session_failed()
                    await emit({"error": str(error), "code": "protocol"})
                    return 200
                if event.kind == "finish":
                    ended = True
                    continue
                try:
                    delivered = session.feed(event.text)
                except SessionLimitError as error:
                    self.service.metrics.session_failed()
                    await emit({"error": str(error), "code": "too_large"})
                    return 200
                except ResourceLimitError as error:
                    self.service.metrics.session_failed()
                    await emit({"error": str(error), "code": "resource_limit"})
                    return 200
                except StreamingError as error:
                    self.service.metrics.session_failed()
                    await emit({"error": str(error), "code": "streaming"})
                    return 200
                for mapping in delivered:
                    await emit(mapping_event(mapping, settled=True))
            for mapping in session.finish():
                await emit(mapping_event(mapping, settled=False))
            await emit(
                {
                    "done": True,
                    "mappings": session.mappings_delivered,
                    "position": session.position,
                    "bytes_fed": session.bytes_fed,
                }
            )
            return 200
        finally:
            session.close()
            try:
                writer.write(b"0\r\n\r\n")
                await writer.drain()
            except (ConnectionError, OSError):
                pass


async def serve_forever(
    config: ServerConfig,
    *,
    service: SpannerService | None = None,
    ready: Callable[[ReproServer], Awaitable[None] | None] | None = None,
) -> None:
    """Bind and serve until cancelled or signalled (the ``repro serve`` loop).

    *ready* is called once the socket is bound — the CLI prints the
    address, tests capture the ephemeral port.

    SIGINT/SIGTERM are handled explicitly via the event loop rather than
    relying on ``KeyboardInterrupt``: a process started in the background
    of a non-interactive shell inherits ``SIGINT`` as *ignored*, so the
    default Python handler is never installed and a bare ``kill -INT``
    (how CI stops the server) would otherwise be dropped on the floor.
    ``loop.add_signal_handler`` replaces the inherited disposition, so
    shutdown works the same in the foreground and the background.
    """
    server = ReproServer(service if service is not None else SpannerService(config))
    await server.start()
    loop = asyncio.get_running_loop()
    stop: asyncio.Future[None] = loop.create_future()

    def request_stop() -> None:
        if not stop.done():
            stop.set_result(None)

    handled_signals: list[signal.Signals] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, request_stop)
        except (NotImplementedError, RuntimeError, ValueError):
            continue  # non-main thread, or a platform without loop signals
        handled_signals.append(signum)
    serve_task = asyncio.ensure_future(server.serve_until_cancelled())
    try:
        if ready is not None:
            result = ready(server)
            if asyncio.iscoroutine(result):
                await result
        await asyncio.wait({serve_task, stop}, return_when=asyncio.FIRST_COMPLETED)
    except asyncio.CancelledError:
        pass
    finally:
        serve_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serve_task
        for signum in handled_signals:
            loop.remove_signal_handler(signum)
        await server.close()
