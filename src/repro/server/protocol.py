"""The newline-delimited JSON session protocol of ``repro serve``.

One HTTP exchange carries one extraction session.  The request body is a
stream of NDJSON events:

.. code-block:: json

    {"pattern": ".*x{a+b}.*", "alphabet": "ab", "emit": "incremental"}
    {"chunk": "aab"}
    {"chunk": "ba"}
    {"finish": true}

The first line **opens** the session — it names the pattern, the
declared alphabet (wildcards expand over it, exactly like ``repro
stream``) and the emit mode.  Every following ``chunk`` event feeds
document text; ``finish`` (or simply the end of the body) runs the final
capturing phase.  The response is NDJSON too: a ``ready``
acknowledgement, one ``mapping`` line per output mapping (spans only —
the server retains no document text), and a closing ``done`` summary:

.. code-block:: json

    {"ready": true, "session": 7, "variables": ["x"], "plan_cache": "hit"}
    {"mapping": {"x": [1, 3]}, "settled": true}
    {"done": true, "mappings": 1, "position": 5}

Protocol violations raise :class:`ProtocolError` — the HTTP layer turns
one into a ``400`` before the response starts, or into an ``error``
NDJSON line once streaming.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.core.errors import ReproError
from repro.core.mappings import Mapping
from repro.runtime.streaming import EMIT_MODES

__all__ = [
    "MAX_EVENT_BYTES",
    "OpenRequest",
    "ProtocolError",
    "SessionEvent",
    "mapping_event",
    "parse_event",
    "parse_open",
]

#: Upper bound on one NDJSON event line.  A chunk event carries at most
#: this many bytes of JSON; larger documents are simply split into more
#: chunk events, so the bound caps per-event buffering without capping
#: document size.
MAX_EVENT_BYTES = 4 * 1024 * 1024


class ProtocolError(ReproError, ValueError):
    """Raised when a session event cannot be parsed or is out of order."""


@dataclass(frozen=True)
class OpenRequest:
    """The parsed session-opening event."""

    pattern: str
    alphabet: str | None
    emit: str

    def cache_key(self, default_alphabet: str) -> tuple[str, str]:
        """The shared plan-cache key: emit mode is per-session, not per-plan.

        Keys on the *resolved* alphabet, so a session that declares the
        server default explicitly shares the compiled plan (and the
        ``--warm`` precompilation) with one that omits the field.
        """
        alphabet = self.alphabet if self.alphabet is not None else default_alphabet
        return (self.pattern, alphabet)


@dataclass(frozen=True)
class SessionEvent:
    """A post-open event: either a document chunk or an explicit finish."""

    kind: str  # "chunk" | "finish"
    text: str = ""


def _load(line: bytes | str) -> dict[str, Any]:
    if isinstance(line, (bytes, bytearray)):
        if len(line) > MAX_EVENT_BYTES:
            raise ProtocolError(
                f"event line of {len(line)} bytes exceeds the "
                f"{MAX_EVENT_BYTES}-byte bound; split the document into "
                "smaller chunk events"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"event line is not valid UTF-8: {error}") from None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"event line is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"event must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def parse_open(line: bytes | str) -> OpenRequest:
    """Parse the session-opening event (the first body line)."""
    payload = _load(line)
    pattern = payload.get("pattern")
    if not isinstance(pattern, str) or not pattern:
        raise ProtocolError('the opening event needs a non-empty "pattern" string')
    alphabet = payload.get("alphabet")
    if alphabet is not None and not isinstance(alphabet, str):
        raise ProtocolError('"alphabet" must be a string of allowed characters')
    emit = payload.get("emit", "incremental")
    if emit not in EMIT_MODES:
        raise ProtocolError(
            f'unknown emit mode {emit!r}; expected one of {list(EMIT_MODES)}'
        )
    unknown = set(payload) - {"pattern", "alphabet", "emit"}
    if unknown:
        raise ProtocolError(
            f"unknown opening fields {sorted(unknown)}; "
            'expected "pattern", "alphabet", "emit"'
        )
    return OpenRequest(pattern=pattern, alphabet=alphabet, emit=emit)


def parse_event(line: bytes | str) -> SessionEvent:
    """Parse a post-open event line."""
    payload = _load(line)
    if "chunk" in payload:
        text = payload["chunk"]
        if not isinstance(text, str):
            raise ProtocolError('"chunk" must carry a string of document text')
        if set(payload) - {"chunk"}:
            raise ProtocolError("a chunk event carries only the \"chunk\" field")
        return SessionEvent("chunk", text)
    if payload.get("finish") is True:
        if set(payload) - {"finish"}:
            raise ProtocolError("a finish event carries only {\"finish\": true}")
        return SessionEvent("finish")
    raise ProtocolError(
        f'expected a {{"chunk": ...}} or {{"finish": true}} event, '
        f"got fields {sorted(payload)}"
    )


def mapping_event(mapping: Mapping, *, settled: bool) -> dict[str, Any]:
    """Render one output mapping as its NDJSON event payload.

    Spans only — ``{"x": [begin, end]}`` per variable — because the
    server retains no document text to slice contents from; clients that
    fed the stream hold the text and can slice locally.
    """
    return {
        "mapping": {
            variable: [span.begin, span.end] for variable, span in mapping.items()
        },
        "settled": settled,
    }
