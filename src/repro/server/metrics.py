"""Observability for the extraction service: counters and latency percentiles.

Follows the metric discipline of the benchmark suite (latency
percentiles, throughput counters, committed baselines): the server keeps
cheap in-memory counters plus a fixed-size ring buffer of recent
per-request latencies, and renders one JSON snapshot for the
``/metrics`` endpoint.  The ring buffer bounds the memory of a
long-lived process — percentiles describe the last ``capacity``
requests, which is what an operator watching a dashboard wants — and a
snapshot never walks more than ``capacity`` floats.

Everything is guarded by one lock: the server itself is a single-loop
asyncio process, but the benchmark harness and the in-process tests
read metrics from other threads, and a torn snapshot would produce
nonsense ratios.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.runtime.plan import PlanCache
from repro.runtime.resilience import resilience_metrics_snapshot
from repro.runtime.sharding import shard_metrics_snapshot

__all__ = ["LatencyRing", "ServerMetrics"]


class LatencyRing:
    """A fixed-capacity ring of recent latency samples (seconds).

    :meth:`percentile` uses the nearest-rank method on a sorted copy of
    the resident samples — exact for the ring's own contents, and at
    most ``capacity`` items to sort per snapshot.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._samples: list[float] = []
        self._next = 0
        self._recorded = 0

    def record(self, seconds: float) -> None:
        if len(self._samples) < self.capacity:
            self._samples.append(seconds)
        else:
            self._samples[self._next] = seconds
            self._next = (self._next + 1) % self.capacity
        self._recorded += 1

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def recorded(self) -> int:
        """Total samples ever recorded (including overwritten ones)."""
        return self._recorded

    def percentile(self, point: float) -> float:
        """The nearest-rank *point*-th percentile of the resident samples.

        Returns ``0.0`` on an empty ring (a ``/metrics`` poll before the
        first request must not fail).
        """
        if not 0 <= point <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {point}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, -(-point * len(ordered) // 100))  # ceil without floats
        return ordered[int(rank) - 1]

    def percentiles(self, points: Iterable[float] = (50.0, 99.0)) -> dict[str, float]:
        """``{"p50": ..., "p99": ...}``-style snapshot of several points."""
        ordered = sorted(self._samples)
        out: dict[str, float] = {}
        for point in points:
            if not ordered:
                out[f"p{point:g}"] = 0.0
                continue
            rank = max(1, -(-point * len(ordered) // 100))
            out[f"p{point:g}"] = ordered[int(rank) - 1]
        return out


class ServerMetrics:
    """The service-wide counter set behind ``/metrics``.

    Counters cover the request surface (per endpoint and status class),
    the session lifecycle (opened / rejected / expired / failed, plus
    the live gauge), and the data plane (bytes fed, chunks fed,
    mappings emitted).  Per-request latency lands in a
    :class:`LatencyRing`; the plan cache is *not* owned here — the
    service passes its shared :class:`~repro.runtime.plan.PlanCache`
    into :meth:`snapshot` so cache counters always come straight from
    the source.
    """

    def __init__(self, *, latency_capacity: int = 1024) -> None:
        self._lock = threading.Lock()
        self._latency = LatencyRing(latency_capacity)
        self._requests_total = 0
        self._responses: dict[str, int] = {}
        self._sessions_opened = 0
        self._sessions_rejected = 0
        self._sessions_expired = 0
        self._sessions_failed = 0
        self._active_sessions = 0
        self._peak_active_sessions = 0
        self._bytes_fed = 0
        self._chunks_fed = 0
        self._mappings_emitted = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def record_request(self, status: int) -> None:
        """Count one finished HTTP exchange by status code."""
        with self._lock:
            self._requests_total += 1
            key = str(status)
            self._responses[key] = self._responses.get(key, 0) + 1

    def record_latency(self, seconds: float) -> None:
        with self._lock:
            self._latency.record(seconds)

    def session_opened(self) -> None:
        with self._lock:
            self._sessions_opened += 1
            self._active_sessions += 1
            if self._active_sessions > self._peak_active_sessions:
                self._peak_active_sessions = self._active_sessions

    def session_closed(self) -> None:
        with self._lock:
            self._active_sessions -= 1

    def session_rejected(self) -> None:
        with self._lock:
            self._sessions_rejected += 1

    def session_expired(self) -> None:
        with self._lock:
            self._sessions_expired += 1

    def session_failed(self) -> None:
        with self._lock:
            self._sessions_failed += 1

    def chunk_fed(self, num_bytes: int) -> None:
        with self._lock:
            self._chunks_fed += 1
            self._bytes_fed += num_bytes

    def mappings_emitted(self, count: int) -> None:
        with self._lock:
            self._mappings_emitted += count

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    @property
    def active_sessions(self) -> int:
        with self._lock:
            return self._active_sessions

    def snapshot(self, plan_cache: PlanCache | None = None) -> dict:
        """The JSON document served by ``GET /metrics``."""
        with self._lock:
            latency = self._latency.percentiles((50.0, 99.0))
            payload: dict = {
                "requests_total": self._requests_total,
                "responses_by_status": dict(sorted(self._responses.items())),
                "sessions": {
                    "opened": self._sessions_opened,
                    "rejected": self._sessions_rejected,
                    "expired": self._sessions_expired,
                    "failed": self._sessions_failed,
                    "active": self._active_sessions,
                    "peak_active": self._peak_active_sessions,
                },
                "data": {
                    "bytes_fed": self._bytes_fed,
                    "chunks_fed": self._chunks_fed,
                    "mappings_emitted": self._mappings_emitted,
                },
                "latency_seconds": {
                    "p50": round(latency["p50"], 6),
                    "p99": round(latency["p99"], 6),
                    "samples": len(self._latency),
                    "recorded": self._latency.recorded,
                },
            }
        if plan_cache is not None:
            payload["plan_cache"] = plan_cache.stats().as_dict()
        # Shard-parallel evaluation counters are process-wide (the
        # sharding module keeps them, whoever drives it — the facade, the
        # batch engine or a server session), so the snapshot just embeds
        # them: shards evaluated vs skipped-as-unreachable, and the
        # summary-pass vs replay-pass time split.
        payload["sharding"] = shard_metrics_snapshot()
        # Fault-tolerance counters are likewise process-wide: retries,
        # worker crashes, deadline misses, pool rebuilds, inline
        # fallbacks, quarantined documents and resource-budget trips,
        # whichever executor recorded them.
        payload["resilience"] = resilience_metrics_snapshot()
        return payload
