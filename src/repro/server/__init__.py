"""``repro serve`` — the long-lived asyncio extraction service.

The server front-end that PR 5's streaming subsystem was built for: many
concurrent clients each open a ``(pattern, alphabet, emit-mode)`` session
over HTTP, feed document text in chunks, and receive mappings back the
moment they settle (newline-delimited JSON both ways).  Compiled plans
are shared across tenants through one size-bounded
:class:`~repro.runtime.plan.PlanCache`; admission control caps concurrent
sessions and per-session fed bytes; ``/metrics`` exposes request counts,
the plan-cache hit ratio, live sessions and p50/p99 request latency.

Layering:

* :mod:`repro.server.protocol` — the NDJSON event grammar;
* :mod:`repro.server.service` — sessions, admission, the shared cache;
* :mod:`repro.server.metrics` — counters and the latency ring buffer;
* :mod:`repro.server.http` — the asyncio HTTP/1.1 front-end;
* :mod:`repro.server.client` — a reference client (tests, benchmarks).
"""

from repro.server.client import StreamClient, fetch_json
from repro.server.http import ReproServer, serve_forever
from repro.server.metrics import LatencyRing, ServerMetrics
from repro.server.protocol import OpenRequest, ProtocolError
from repro.server.service import (
    AdmissionError,
    DEFAULT_SERVE_ALPHABET,
    ServerConfig,
    Session,
    SessionLimitError,
    SpannerService,
)

__all__ = [
    "AdmissionError",
    "DEFAULT_SERVE_ALPHABET",
    "LatencyRing",
    "OpenRequest",
    "ProtocolError",
    "ReproServer",
    "ServerConfig",
    "ServerMetrics",
    "Session",
    "SessionLimitError",
    "SpannerService",
    "StreamClient",
    "fetch_json",
    "serve_forever",
]
