"""A reference asyncio client for the ``repro serve`` NDJSON protocol.

Used by the integration tests and ``benchmarks/bench_serve.py``, and
small enough to double as documentation of the wire format: open a
session with :meth:`StreamClient.open`, :meth:`~StreamClient.feed`
document text as it becomes available, then
:meth:`~StreamClient.finish` and drain the remaining events.  The
request body is sent with chunked transfer encoding so the server sees
each event the moment it is written — the whole point of the streaming
service.

>>> client = await StreamClient.open("127.0.0.1", port, ".*x{a+b}.*", alphabet="ab")
>>> await client.feed("aab")          # doctest: +SKIP
>>> events = await client.finish()    # doctest: +SKIP
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["StreamClient", "fetch_json"]


@dataclass
class _Response:
    status: int
    headers: dict[str, str]
    #: Parsed NDJSON events for 200 streams; the JSON error body otherwise.
    body: dict[str, Any] | None = None
    events: list[dict[str, Any]] = field(default_factory=list)


async def _read_head(reader: asyncio.StreamReader) -> tuple[int, dict[str, str]]:
    raw = await reader.readuntil(b"\r\n\r\n")
    lines = raw.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    return status, headers


class StreamClient:
    """One open extraction session against a running ``repro serve``."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        status: int,
        headers: dict[str, str],
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.status = status
        self.headers = headers
        self.ready: dict[str, Any] | None = None
        self.error_body: dict[str, Any] | None = None
        self._line_buffer = b""
        self._response_done = False
        self._body_closed = False

    # ------------------------------------------------------------------ #
    # Opening
    # ------------------------------------------------------------------ #

    @classmethod
    async def open(
        cls,
        host: str,
        port: int,
        pattern: str,
        *,
        alphabet: str | None = None,
        emit: str = "incremental",
    ) -> "StreamClient":
        """Connect, send the opening event, and read the server's verdict.

        On HTTP 200 the returned client is live (``ready`` holds the
        acknowledgement event); on any other status the error body is in
        ``error_body`` and the connection is already closed.
        """
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            (
                "POST /v1/stream HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Transfer-Encoding: chunked\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
        )
        opening: dict[str, Any] = {"pattern": pattern, "emit": emit}
        if alphabet is not None:
            opening["alphabet"] = alphabet
        client = cls(reader, writer, 0, {})
        await client._send_event(opening)
        client.status, client.headers = await _read_head(reader)
        if client.status != 200:
            body = await client._read_plain_body()
            client.error_body = json.loads(body) if body.strip() else None
            await client.close()
            return client
        client.ready = await client.read_event()
        return client

    # ------------------------------------------------------------------ #
    # Request side
    # ------------------------------------------------------------------ #

    async def _send_event(self, payload: dict[str, Any]) -> None:
        line = (json.dumps(payload) + "\n").encode("utf-8")
        self._writer.write(b"%x\r\n" % len(line) + line + b"\r\n")
        await self._writer.drain()

    async def feed(self, text: str) -> None:
        """Send one document chunk.

        Settled mappings stream back on the response side as the server
        evaluates; read them with :meth:`read_event` (blocking until the
        next event) or collect everything with :meth:`finish`.  The
        ``settled`` flag on each mapping event records whether it was
        delivered mid-stream or only at finish.
        """
        await self._send_event({"chunk": text})

    async def finish(self) -> list[dict[str, Any]]:
        """Send the finish event, close the body, and drain all events."""
        await self._send_event({"finish": True})
        await self._close_body()
        events: list[dict[str, Any]] = []
        while True:
            event = await self.read_event()
            if event is None:
                break
            events.append(event)
        return events

    async def _close_body(self) -> None:
        if not self._body_closed:
            self._body_closed = True
            self._writer.write(b"0\r\n\r\n")
            await self._writer.drain()

    # ------------------------------------------------------------------ #
    # Response side
    # ------------------------------------------------------------------ #

    async def _read_plain_body(self) -> bytes:
        length = int(self.headers.get("content-length", "0"))
        return await self._reader.readexactly(length) if length else b""

    async def _next_chunk(self) -> bytes:
        size_line = await self._reader.readline()
        if not size_line:
            return b""
        size = int(size_line.split(b";", 1)[0].strip() or b"0", 16)
        if size == 0:
            await self._reader.readline()  # trailing CRLF of the body
            return b""
        data = await self._reader.readexactly(size)
        await self._reader.readexactly(2)
        return data

    async def read_event(self) -> dict[str, Any] | None:
        """The next NDJSON event, or ``None`` once the response ended."""
        while True:
            newline = self._line_buffer.find(b"\n")
            if newline >= 0:
                line = self._line_buffer[:newline]
                self._line_buffer = self._line_buffer[newline + 1 :]
                if line.strip():
                    return json.loads(line)
                continue
            if self._response_done:
                return None
            try:
                data = await self._next_chunk()
            except (asyncio.IncompleteReadError, ConnectionError):
                data = b""
            if not data:
                self._response_done = True
            else:
                self._line_buffer += data

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def fetch_json(host: str, port: int, path: str) -> tuple[int, dict[str, Any]]:
    """``GET`` *path* and parse the JSON body (the ``/metrics`` helper)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        (
            f"GET {path} HTTP/1.1\r\nHost: {host}:{port}\r\nConnection: close\r\n\r\n"
        ).encode("ascii")
    )
    await writer.drain()
    status, headers = await _read_head(reader)
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return status, json.loads(body) if body.strip() else {}
