"""The multi-tenant extraction service behind ``repro serve``.

:class:`SpannerService` owns everything the HTTP front-end
(:mod:`repro.server.http`) must not: the **shared plan cache** (one
:class:`~repro.runtime.plan.PlanCache` mapping ``(pattern, alphabet)``
to a compiled :class:`~repro.spanners.Spanner`, so concurrent sessions
over the same pattern compile once and every repeat request is a cache
hit), **admission control** (a hard cap on concurrent sessions plus a
per-session fed-bytes cap), and the :class:`~repro.server.metrics.ServerMetrics`
counters.

A :class:`Session` wraps one per-connection
:class:`~repro.runtime.streaming.StreamingEvaluator`: ``feed()`` text as
the transport delivers it, ``finish()`` at end of stream, ``close()``
always (idempotent — it releases the admission slot).  Sessions hold a
strong reference to their cache entry, so plan-cache eviction under
pressure never corrupts an in-flight session: the evicted entry lives on
until its last session closes, and the next request for that pattern
recompiles a fresh one.

The service is transport-agnostic and synchronous; the asyncio layer
decides where the await-points go (between chunks, before writes).  All
shared structures are thread-safe regardless, because the benchmark
harness and tests poke at them from other threads.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.core.errors import ReproError, ResourceLimitError
from repro.core.mappings import Mapping
from repro.runtime.plan import CacheStats, PlanCache
from repro.runtime.resilience import RESILIENCE_METRICS
from repro.runtime.streaming import StreamedResult, StreamingEvaluator
from repro.server.metrics import ServerMetrics
from repro.server.protocol import OpenRequest
from repro.spanners.spanner import Spanner

__all__ = [
    "AdmissionError",
    "DEFAULT_SERVE_ALPHABET",
    "ServerConfig",
    "Session",
    "SessionLimitError",
    "SpannerService",
]

#: The default declared alphabet of a session that does not send one:
#: printable ASCII plus the usual whitespace, matching ``repro stream``.
DEFAULT_SERVE_ALPHABET = "".join(chr(point) for point in range(32, 127)) + "\t\n\r"


class AdmissionError(ReproError):
    """Raised when the session cap is reached; maps to HTTP 429."""

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class SessionLimitError(ReproError):
    """Raised when a session exceeds its per-session fed-bytes cap."""


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of the extraction service (CLI flags mirror these)."""

    host: str = "127.0.0.1"
    port: int = 8765
    #: Hard cap on concurrently open sessions; past it, opens get 429.
    max_sessions: int = 64
    #: Bound of the shared ``(pattern, alphabet)`` → compiled-plan cache.
    plan_cache_size: int = 32
    #: Per-session cap on fed document bytes (UTF-8); 0 disables the cap.
    max_session_bytes: int = 64 * 1024 * 1024
    #: Per-session cap on live arena cells; 0 disables the cap.  Trips
    #: as :class:`~repro.core.errors.ResourceLimitError` *before* the
    #: arena of a pathological pattern×document pair can exhaust the
    #: server's memory — the fed-bytes cap alone cannot see this, since
    #: arena growth is not proportional to input size.
    max_session_arena_cells: int = 0
    #: Seconds a session may sit idle between events before it is closed.
    idle_timeout: float = 30.0
    #: Capacity of the per-request latency ring behind ``/metrics``.
    latency_capacity: int = 1024
    #: Alphabet used by sessions that do not declare one.
    default_alphabet: str = DEFAULT_SERVE_ALPHABET

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError(f"max_sessions must be positive, got {self.max_sessions}")
        if self.plan_cache_size < 1:
            raise ValueError(
                f"plan_cache_size must be positive, got {self.plan_cache_size}"
            )
        if self.max_session_bytes < 0:
            raise ValueError(
                f"max_session_bytes must be >= 0, got {self.max_session_bytes}"
            )
        if self.max_session_arena_cells < 0:
            raise ValueError(
                "max_session_arena_cells must be >= 0, got "
                f"{self.max_session_arena_cells}"
            )
        if self.idle_timeout <= 0:
            raise ValueError(f"idle_timeout must be positive, got {self.idle_timeout}")


@dataclass
class PlanEntry:
    """One shared-cache entry: a compiled spanner plus its metadata."""

    pattern: str
    alphabet: str
    spanner: Spanner
    variables: tuple[str, ...]
    sessions_served: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def open_evaluator(self, emit: str) -> StreamingEvaluator:
        with self._lock:
            self.sessions_served += 1
        # Each session gets a private evaluator (and scratch): settled
        # mappings are delivered through feed(), so nothing needs to be
        # retained for a finish()-time replay.
        return self.spanner.stream(
            alphabet=self.alphabet, emit=emit, retain_settled=False
        )


class Session:
    """One client's chunk-fed evaluation, admission slot included."""

    def __init__(
        self,
        service: "SpannerService",
        session_id: int,
        entry: PlanEntry,
        request: OpenRequest,
        cache_outcome: str,
    ) -> None:
        self._service = service
        self.session_id = session_id
        self.entry = entry
        self.emit = request.emit
        self.cache_outcome = cache_outcome  # "hit" | "miss"
        self.opened_at = time.monotonic()
        self.bytes_fed = 0
        self.mappings_delivered = 0
        self._evaluator = entry.open_evaluator(request.emit)
        self._closed = False
        self._finished = False

    @property
    def variables(self) -> tuple[str, ...]:
        return self.entry.variables

    @property
    def position(self) -> int:
        return self._evaluator.position

    def feed(self, text: str) -> list[Mapping]:
        """Feed one decoded chunk; returns the mappings it settled.

        Raises :class:`SessionLimitError` past the fed-bytes cap,
        :class:`~repro.core.errors.ResourceLimitError` past the
        arena-cell cap, and whatever the evaluator raises on protocol
        violations (e.g. a foreign character after a delivery under
        incremental emission).
        """
        cap = self._service.config.max_session_bytes
        size = len(text.encode("utf-8"))
        if cap and self.bytes_fed + size > cap:
            raise SessionLimitError(
                f"session {self.session_id} exceeded the per-session cap of "
                f"{cap} fed bytes ({self.bytes_fed} fed so far, chunk of "
                f"{size}); split the work across sessions or raise "
                "--max-session-bytes"
            )
        delivered = self._evaluator.feed(text)
        cell_cap = self._service.config.max_session_arena_cells
        if cell_cap:
            cells = self._evaluator.arena_cells()
            if cells > cell_cap:
                RESILIENCE_METRICS.resource_limit_tripped()
                raise ResourceLimitError(
                    f"session {self.session_id} exceeded the per-session cap "
                    f"of {cell_cap} arena cells ({cells} live after this "
                    "chunk); simplify the pattern, split the work or raise "
                    "--max-session-arena-cells"
                )
        self.bytes_fed += size
        self._service.metrics.chunk_fed(size)
        if delivered:
            self.mappings_delivered += len(delivered)
            self._service.metrics.mappings_emitted(len(delivered))
        return delivered

    def finish(self) -> list[Mapping]:
        """Run the final capturing phase; returns the remaining mappings.

        Under ``emit="incremental"`` these are the residual mappings that
        only resolved at end of stream (settled ones were already handed
        out by :meth:`feed`); under ``"on_finish"`` they are the whole
        output.
        """
        result = self._evaluator.finish()
        self._finished = True
        if isinstance(result, StreamedResult):
            remaining = list(result.residual)
        else:
            remaining = list(result)
        if remaining:
            self.mappings_delivered += len(remaining)
            self._service.metrics.mappings_emitted(len(remaining))
        return remaining

    @property
    def finished(self) -> bool:
        return self._finished

    def close(self) -> None:
        """Release the admission slot (idempotent; always call it)."""
        if self._closed:
            return
        self._closed = True
        self._service._release(self)

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("finished" if self._finished else "open")
        return (
            f"Session(id={self.session_id}, pattern={self.entry.pattern!r}, "
            f"emit={self.emit!r}, {state})"
        )


class SpannerService:
    """Shared state of the server: plan cache, admission, metrics."""

    def __init__(
        self,
        config: ServerConfig | None = None,
        *,
        plan_cache: PlanCache[tuple[str, str | None], PlanEntry] | None = None,
        metrics: ServerMetrics | None = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self.plan_cache: PlanCache[tuple[str, str | None], PlanEntry] = (
            plan_cache
            if plan_cache is not None
            else PlanCache(self.config.plan_cache_size, name="serve-plans")
        )
        self.metrics = (
            metrics
            if metrics is not None
            else ServerMetrics(latency_capacity=self.config.latency_capacity)
        )
        self._admission = threading.Lock()
        self._active = 0
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # Plan compilation
    # ------------------------------------------------------------------ #

    def _build_entry(self, request: OpenRequest) -> PlanEntry:
        alphabet = (
            request.alphabet
            if request.alphabet is not None
            else self.config.default_alphabet
        )
        spanner = Spanner.from_regex(request.pattern)
        # Compile eagerly so malformed patterns fail at open time (a 400)
        # instead of surfacing mid-stream, and so a cache hit really does
        # skip all compilation work.
        evaluator = spanner.stream(alphabet=alphabet, emit=request.emit)
        del evaluator  # construction forced the per-alphabet compilation
        return PlanEntry(
            pattern=request.pattern,
            alphabet=alphabet,
            spanner=spanner,
            variables=tuple(sorted(spanner.variables())),
        )

    def entry_for(self, request: OpenRequest) -> tuple[PlanEntry, str]:
        """The shared-cache entry for *request*, plus ``"hit"``/``"miss"``."""
        key = request.cache_key(self.config.default_alphabet)
        outcome = "hit" if key in self.plan_cache else "miss"
        entry = self.plan_cache.get_or_create(key, lambda: self._build_entry(request))
        return entry, outcome

    def warm(self, pattern: str, alphabet: str | None = None) -> PlanEntry:
        """Precompile *pattern* into the shared cache (the ``--warm`` flag).

        Raises :class:`~repro.core.errors.ParseError` /
        :class:`~repro.core.errors.CompilationError` on malformed input —
        the CLI turns those into its one-line-stderr convention.
        """
        request = OpenRequest(pattern=pattern, alphabet=alphabet, emit="incremental")
        entry, _outcome = self.entry_for(request)
        return entry

    # ------------------------------------------------------------------ #
    # Session lifecycle
    # ------------------------------------------------------------------ #

    @property
    def active_sessions(self) -> int:
        with self._admission:
            return self._active

    def open_session(self, request: OpenRequest) -> Session:
        """Admit and open one session; raises :class:`AdmissionError` at cap."""
        with self._admission:
            if self._active >= self.config.max_sessions:
                self.metrics.session_rejected()
                raise AdmissionError(
                    f"session cap reached ({self.config.max_sessions} active); "
                    "retry shortly",
                )
            self._active += 1
        try:
            entry, outcome = self.entry_for(request)
            session = Session(self, next(self._ids), entry, request, outcome)
        except Exception:
            with self._admission:
                self._active -= 1
            raise
        self.metrics.session_opened()
        return session

    def _release(self, session: Session) -> None:
        with self._admission:
            self._active -= 1
        self.metrics.session_closed()

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def cache_stats(self) -> CacheStats:
        return self.plan_cache.stats()

    def metrics_snapshot(self) -> dict:
        return self.metrics.snapshot(self.plan_cache)
