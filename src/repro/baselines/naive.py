"""Naive baseline: materialize all runs, deduplicate, then emit.

This is what an implementation without the paper's machinery would do:
search every valid accepting run of the automaton (exponentially many in
the worst case), collect the mappings into a set to remove duplicates, and
only then start producing output.  Both its total running time and its
time-to-first-output grow with the number of runs, which is exactly the
behaviour the constant-delay algorithm avoids; the benchmark
``benchmarks/bench_baselines.py`` measures the gap.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.mappings import Mapping
from repro.automata.eva import ExtendedVA
from repro.automata.va import VariableSetAutomaton

__all__ = ["NaiveEnumerator", "naive_evaluate"]


class NaiveEnumerator:
    """Run-materializing evaluator for VA and extended VA."""

    def __init__(self, automaton: VariableSetAutomaton | ExtendedVA) -> None:
        if not isinstance(automaton, (VariableSetAutomaton, ExtendedVA)):
            raise TypeError(f"expected a VA or extended VA, got {automaton!r}")
        self._automaton = automaton

    @property
    def automaton(self) -> VariableSetAutomaton | ExtendedVA:
        """The automaton being evaluated."""
        return self._automaton

    def evaluate(self, document: object) -> set[Mapping]:
        """Return ``⟦A⟧(d)`` as a materialized set of mappings."""
        return self._automaton.evaluate(document)

    def enumerate(self, document: object) -> Iterator[Mapping]:
        """Enumerate ``⟦A⟧(d)`` after materializing it completely.

        Unlike the constant-delay enumerator there is no bounded-delay
        guarantee: the first output only appears after every run has been
        explored.
        """
        yield from self.evaluate(document)

    def count(self, document: object) -> int:
        """Count outputs by materializing them (baseline for Theorem 5.1)."""
        return len(self.evaluate(document))


def naive_evaluate(
    automaton: VariableSetAutomaton | ExtendedVA, document: object
) -> set[Mapping]:
    """Convenience wrapper around :class:`NaiveEnumerator`."""
    return NaiveEnumerator(automaton).evaluate(document)
