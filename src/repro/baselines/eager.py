"""Ablation baseline: Algorithm 1 with eager list copying.

The constant factors of the paper's preprocessing phase hinge on the lazy
list data structure: ``lazycopy`` and ``append`` are O(1) because cells are
shared.  This module implements the *same* algorithm with plain Python lists
that are copied eagerly at every Capturing/Reading step.  It produces the
same outputs (the tests check this) but its preprocessing degrades towards
``O(|A| × |d| × |output-related factors|)`` because list copies grow with the
number of partial runs — which is exactly the behaviour the paper's data
structure is designed to avoid.  The ablation benchmark
``benchmarks/bench_ablation.py`` measures the gap.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.core.documents import as_text
from repro.core.errors import NotDeterministicError, NotSequentialError
from repro.core.mappings import Mapping
from repro.automata.eva import ExtendedVA
from repro.automata.markers import MarkerSet
from repro.enumeration.enumerate import mapping_from_steps

__all__ = ["EagerCopyEvaluator"]

State = Hashable

# A partial output is represented as a tuple of (marker set, position) pairs.
PartialOutput = tuple[tuple[MarkerSet, int], ...]


class EagerCopyEvaluator:
    """Algorithm 1 without the lazy-list structure (ablation).

    Per state it keeps the explicit list of partial outputs instead of a
    shared DAG; every Capturing step copies and extends those lists.
    """

    def __init__(self, automaton: ExtendedVA) -> None:
        if not automaton.has_initial:
            raise NotSequentialError("the automaton has no initial state")
        if not automaton.is_deterministic():
            raise NotDeterministicError("the eager-copy evaluator requires a deterministic eVA")
        self._automaton = automaton
        self._variable_transitions: dict[State, list[tuple[MarkerSet, State]]] = {}
        self._letter_transitions: dict[State, dict[str, State]] = {}
        for state in automaton.states:
            outgoing = list(automaton.variable_transitions_from(state))
            if outgoing:
                self._variable_transitions[state] = outgoing
            letters = {
                symbol: target for symbol, target in automaton.letter_transitions_from(state)
            }
            if letters:
                self._letter_transitions[state] = letters

    @property
    def automaton(self) -> ExtendedVA:
        """The automaton being evaluated."""
        return self._automaton

    def partial_outputs(self, document: object) -> dict[State, list[PartialOutput]]:
        """Run the eager variant of Algorithm 1 and return the per-state outputs."""
        text = as_text(document)
        outputs: dict[State, list[PartialOutput]] = {self._automaton.initial: [()]}

        def capturing(position: int) -> None:
            snapshot = list(outputs.items())
            for state, partials in snapshot:
                for marker_set, target in self._variable_transitions.get(state, ()):
                    extended = [partial + ((marker_set, position),) for partial in partials]
                    outputs.setdefault(target, []).extend(extended)

        def reading(position: int) -> None:
            nonlocal outputs
            symbol = text[position]
            previous = outputs
            outputs = {}
            for state, partials in previous.items():
                target = self._letter_transitions.get(state, {}).get(symbol)
                if target is None:
                    continue
                outputs.setdefault(target, []).extend(list(partials))

        for position in range(len(text)):
            capturing(position)
            reading(position)
        capturing(len(text))
        return outputs

    def enumerate(self, document: object) -> Iterator[Mapping]:
        """Enumerate the output mappings (after fully materializing them)."""
        outputs = self.partial_outputs(document)
        finals = self._automaton.finals
        for state, partials in outputs.items():
            if state not in finals:
                continue
            for partial in partials:
                yield mapping_from_steps(partial)

    def evaluate(self, document: object) -> set[Mapping]:
        """Return ``⟦A⟧(d)`` as a set."""
        return set(self.enumerate(document))

    def count(self, document: object) -> int:
        """Count outputs by materializing them."""
        return sum(1 for _ in self.enumerate(document))
