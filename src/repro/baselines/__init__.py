"""Baseline enumeration algorithms used for comparison in the benchmarks."""

from repro.baselines.naive import NaiveEnumerator, naive_evaluate
from repro.baselines.polydelay import PolynomialDelayEnumerator, polynomial_delay_evaluate

__all__ = [
    "NaiveEnumerator",
    "PolynomialDelayEnumerator",
    "naive_evaluate",
    "polynomial_delay_evaluate",
]
