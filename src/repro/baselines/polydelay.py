"""Polynomial-delay baseline ("flashlight" enumeration) for sequential eVA.

This baseline mirrors the algorithmic idea of Freydenberger, Kimelfeld and
Peterfreund [13] that the paper compares against: enumerate the outputs of
a (not necessarily deterministic) sequential extended VA directly, without
determinizing it first, at the price of a *polynomial* rather than constant
delay.

The enumeration is a depth-first search over the choices "which marker set
(possibly none) is executed at position ``i``".  A choice is only explored
when it can be completed into an accepting run, which is decided with a
precomputed backward-reachability table over the document suffixes — the
"flashlight" that keeps the delay polynomial (``O(|A| × |d|)`` per output)
instead of exponential.  Distinct choice sequences produce distinct
mappings, so no deduplication is needed.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.core.documents import as_text
from repro.core.errors import NotSequentialError
from repro.core.mappings import Mapping
from repro.automata.eva import ExtendedVA
from repro.automata.markers import MarkerSet
from repro.automata.transforms import va_to_eva
from repro.automata.va import VariableSetAutomaton
from repro.enumeration.enumerate import mapping_from_steps

__all__ = ["PolynomialDelayEnumerator", "polynomial_delay_evaluate"]

State = Hashable


class PolynomialDelayEnumerator:
    """Flashlight enumeration for sequential extended VA.

    Classic VA inputs are first converted with
    :func:`~repro.automata.transforms.va_to_eva`; for functional VA this
    conversion is polynomial (Proposition 4.3 / Lemma B.1).
    """

    def __init__(
        self,
        automaton: VariableSetAutomaton | ExtendedVA,
        *,
        check_sequentiality: bool = False,
    ) -> None:
        extended = va_to_eva(automaton) if isinstance(automaton, VariableSetAutomaton) else automaton
        if check_sequentiality and not extended.is_sequential():
            raise NotSequentialError("the polynomial-delay baseline requires a sequential automaton")
        self._automaton = extended
        # Per-state transition tables.
        self._variable_transitions: dict[State, dict[MarkerSet, set[State]]] = {}
        self._letter_transitions: dict[State, dict[str, set[State]]] = {}
        for state in extended.states:
            for marker_set, target in extended.variable_transitions_from(state):
                self._variable_transitions.setdefault(state, {}).setdefault(marker_set, set()).add(target)
            for symbol, target in extended.letter_transitions_from(state):
                self._letter_transitions.setdefault(state, {}).setdefault(symbol, set()).add(target)

    @property
    def automaton(self) -> ExtendedVA:
        """The (extended) automaton being evaluated."""
        return self._automaton

    # ------------------------------------------------------------------ #
    # The flashlight table
    # ------------------------------------------------------------------ #

    def _useful_states(self, text: str) -> list[frozenset[State]]:
        """``useful[i]``: states from which acceptance over ``text[i:]`` is possible.

        ``useful[i]`` contains state ``q`` when a run fragment starting at
        ``q`` just before the variable transition of position ``i`` can
        reach a final state after consuming the remaining suffix.
        """
        n = len(text)
        finals = self._automaton.finals
        useful: list[frozenset[State]] = [frozenset()] * (n + 1)

        # Position n: one optional variable transition, then acceptance.
        last = set(finals)
        for state, per_markers in self._variable_transitions.items():
            if any(targets & finals for targets in per_markers.values()):
                last.add(state)
        useful[n] = frozenset(last)

        for position in range(n - 1, -1, -1):
            symbol = text[position]
            successors_ok = useful[position + 1]

            def can_read(state: State) -> bool:
                targets = self._letter_transitions.get(state, {}).get(symbol, ())
                return any(target in successors_ok for target in targets)

            current: set[State] = set()
            for state in self._automaton.states:
                if can_read(state):
                    current.add(state)
                    continue
                per_markers = self._variable_transitions.get(state, {})
                if any(
                    can_read(target)
                    for targets in per_markers.values()
                    for target in targets
                ):
                    current.add(state)
            useful[position] = frozenset(current)
        return useful

    # ------------------------------------------------------------------ #
    # Enumeration
    # ------------------------------------------------------------------ #

    def enumerate(self, document: object) -> Iterator[Mapping]:
        """Enumerate ``⟦A⟧(d)`` with polynomial delay and no repetitions."""
        text = as_text(document)
        n = len(text)
        if not self._automaton.has_initial:
            return
        useful = self._useful_states(text)
        finals = self._automaton.finals
        initial = frozenset({self._automaton.initial})

        def marker_choices(states: frozenset[State]) -> dict[MarkerSet, frozenset[State]]:
            """Successor state sets per available marker set (``∅`` excluded)."""
            choices: dict[MarkerSet, set[State]] = {}
            for state in states:
                for marker_set, targets in self._variable_transitions.get(state, {}).items():
                    choices.setdefault(marker_set, set()).update(targets)
            return {marker_set: frozenset(targets) for marker_set, targets in choices.items()}

        def read(states: frozenset[State], position: int) -> frozenset[State]:
            symbol = text[position]
            targets: set[State] = set()
            for state in states:
                targets.update(self._letter_transitions.get(state, {}).get(symbol, ()))
            return frozenset(target for target in targets if target in useful[position + 1])

        def explore(
            states: frozenset[State], position: int, steps: tuple[tuple[MarkerSet, int], ...]
        ) -> Iterator[Mapping]:
            if position == n:
                if states & finals:
                    yield mapping_from_steps(steps)
                for marker_set, targets in sorted(
                    marker_choices(states).items(), key=lambda item: str(item[0])
                ):
                    if targets & finals:
                        yield mapping_from_steps(steps + ((marker_set, position),))
                return
            # Option 1: no variable transition at this position.
            skipped = read(states, position)
            if skipped:
                yield from explore(skipped, position + 1, steps)
            # Option 2: one of the available marker sets.
            for marker_set, targets in sorted(
                marker_choices(states).items(), key=lambda item: str(item[0])
            ):
                advanced = read(frozenset(targets), position)
                if advanced:
                    yield from explore(advanced, position + 1, steps + ((marker_set, position),))

        yield from explore(initial, 0, ())

    def evaluate(self, document: object) -> set[Mapping]:
        """Return ``⟦A⟧(d)`` as a materialized set."""
        return set(self.enumerate(document))

    def count(self, document: object) -> int:
        """Count the outputs by full enumeration."""
        return sum(1 for _ in self.enumerate(document))


def polynomial_delay_evaluate(
    automaton: VariableSetAutomaton | ExtendedVA, document: object
) -> set[Mapping]:
    """Convenience wrapper around :class:`PolynomialDelayEnumerator`."""
    return PolynomialDelayEnumerator(automaton).evaluate(document)
