"""Fundamental data model: documents, spans, mappings and errors."""

from repro.core.documents import Document
from repro.core.errors import (
    CompilationError,
    EvaluationError,
    NotDeterministicError,
    NotSequentialError,
    ParseError,
    ReproError,
    SpanError,
)
from repro.core.mappings import Mapping
from repro.core.spans import Span

__all__ = [
    "CompilationError",
    "Document",
    "EvaluationError",
    "Mapping",
    "NotDeterministicError",
    "NotSequentialError",
    "ParseError",
    "ReproError",
    "Span",
    "SpanError",
]
