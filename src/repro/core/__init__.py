"""Fundamental data model: documents, spans, mappings and errors."""

from repro.core.documents import Document, DocumentCollection
from repro.core.errors import (
    CompilationError,
    EvaluationError,
    NotDeterministicError,
    NotSequentialError,
    ParseError,
    ReproError,
    SpanError,
)
from repro.core.mappings import Mapping
from repro.core.spans import Span

__all__ = [
    "CompilationError",
    "Document",
    "DocumentCollection",
    "EvaluationError",
    "Mapping",
    "NotDeterministicError",
    "NotSequentialError",
    "ParseError",
    "ReproError",
    "Span",
    "SpanError",
]
