"""Mappings: partial assignments of spans to capture variables.

Following the paper (Section 2), the output of a document spanner is a set
of *mappings*: partial functions from variables to spans.  Unlike the tuple
semantics of Fagin et al., a mapping need not assign every variable, which
is what makes sequential (as opposed to functional) automata meaningful.

:class:`Mapping` is immutable and hashable so that spanner outputs can be
collected into Python sets and compared across evaluation algorithms, which
the test-suite does extensively.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping as TypingMapping

from repro.core.errors import SpanError
from repro.core.spans import Span

__all__ = ["Mapping"]


class Mapping:
    """An immutable partial function from variable names to :class:`Span`.

    >>> m = Mapping({"name": Span(0, 4), "email": Span(6, 12)})
    >>> m["name"]
    Span(0, 4)
    >>> sorted(m.domain())
    ['email', 'name']
    """

    __slots__ = ("_assignment", "_hash")

    EMPTY: "Mapping"

    def __init__(self, assignment: TypingMapping[str, Span] | Iterable[tuple[str, Span]] = ()) -> None:
        items = dict(assignment)
        for variable, span in items.items():
            if not isinstance(variable, str):
                raise SpanError(f"variable names must be strings, got {variable!r}")
            if not isinstance(span, Span):
                raise SpanError(f"values must be Span instances, got {span!r} for {variable!r}")
        self._assignment: dict[str, Span] = items
        self._hash: int | None = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls) -> "Mapping":
        """The empty mapping (the paper's ``∅``)."""
        return cls.EMPTY

    @classmethod
    def single(cls, variable: str, span: Span) -> "Mapping":
        """The mapping ``[x → s]`` assigning a single variable."""
        return cls({variable: span})

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def domain(self) -> frozenset[str]:
        """The set of variables assigned by this mapping (paper: ``dom(µ)``)."""
        return frozenset(self._assignment)

    def __getitem__(self, variable: str) -> Span:
        return self._assignment[variable]

    def get(self, variable: str, default: Span | None = None) -> Span | None:
        """Return the span assigned to *variable*, or *default*."""
        return self._assignment.get(variable, default)

    def __contains__(self, variable: object) -> bool:
        return variable in self._assignment

    def __len__(self) -> int:
        return len(self._assignment)

    def __iter__(self) -> Iterator[str]:
        return iter(self._assignment)

    def items(self) -> Iterator[tuple[str, Span]]:
        """Iterate over ``(variable, span)`` pairs."""
        return iter(self._assignment.items())

    def is_total_on(self, variables: Iterable[str]) -> bool:
        """Whether every variable in *variables* is assigned."""
        return all(variable in self._assignment for variable in variables)

    def contents(self, document: object) -> dict[str, str]:
        """Return ``{variable: extracted text}`` for *document*."""
        return {
            variable: span.content(document)
            for variable, span in self._assignment.items()
        }

    # ------------------------------------------------------------------ #
    # Algebra on mappings (paper, Section 2)
    # ------------------------------------------------------------------ #

    def compatible(self, other: "Mapping") -> bool:
        """Whether the two mappings agree on their shared variables (``µ1 ∼ µ2``)."""
        small, large = (
            (self, other) if len(self) <= len(other) else (other, self)
        )
        return all(
            variable not in large._assignment or large._assignment[variable] == span
            for variable, span in small._assignment.items()
        )

    def union(self, other: "Mapping") -> "Mapping":
        """Return ``µ1 ∪ µ2``.  Requires the mappings to be compatible."""
        if not self.compatible(other):
            raise SpanError(f"cannot union incompatible mappings {self} and {other}")
        merged = dict(self._assignment)
        merged.update(other._assignment)
        return Mapping(merged)

    def restrict(self, variables: Iterable[str]) -> "Mapping":
        """Return the projection ``µ|Y`` of the mapping onto *variables*."""
        keep = set(variables)
        return Mapping(
            {v: s for v, s in self._assignment.items() if v in keep}
        )

    def drop(self, variables: Iterable[str]) -> "Mapping":
        """Return the mapping with *variables* removed from its domain."""
        remove = set(variables)
        return Mapping(
            {v: s for v, s in self._assignment.items() if v not in remove}
        )

    def rename(self, renaming: TypingMapping[str, str]) -> "Mapping":
        """Return a copy with variables renamed according to *renaming*."""
        return Mapping(
            {renaming.get(v, v): s for v, s in self._assignment.items()}
        )

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self._assignment == other._assignment

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._assignment.items()))
        return self._hash

    def __repr__(self) -> str:
        if not self._assignment:
            return "Mapping({})"
        inner = ", ".join(
            f"{variable!r}: {span!r}"
            for variable, span in sorted(self._assignment.items())
        )
        return f"Mapping({{{inner}}})"

    def paper_notation(self) -> str:
        """Render the mapping with the paper's 1-based span notation."""
        if not self._assignment:
            return "{}"
        inner = ", ".join(
            f"{variable} → {span.paper_notation()}"
            for variable, span in sorted(self._assignment.items())
        )
        return f"{{{inner}}}"


Mapping.EMPTY = Mapping()
