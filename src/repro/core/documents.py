"""Documents: the strings from which information is extracted.

A document is simply a finite string over a finite alphabet.  Most library
entry points accept either a plain ``str`` or a :class:`Document`; the class
exists to carry convenience helpers (alphabet extraction, span slicing,
position arithmetic) and to make benchmark workloads self-describing.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator

from repro.core.errors import SpanError
from repro.core.spans import Span

__all__ = ["Document", "as_text"]


def as_text(document: object) -> str:
    """Normalize a document argument (``str`` or :class:`Document`) to ``str``."""
    if isinstance(document, str):
        return document
    if isinstance(document, Document):
        return document.text
    text = getattr(document, "text", None)
    if isinstance(text, str):
        return text
    raise TypeError(f"expected a document (str or Document), got {document!r}")


class Document:
    """A wrapper around an input string.

    >>> doc = Document("John<j@g.be>, Jane<555-12>")
    >>> len(doc)
    26
    >>> doc[Span(0, 4)]
    'John'
    """

    __slots__ = ("_text", "_name")

    def __init__(self, text: str, name: str | None = None) -> None:
        if not isinstance(text, str):
            raise TypeError(f"document text must be a string, got {text!r}")
        self._text = text
        self._name = name

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_file(cls, path: str | os.PathLike, encoding: str = "utf-8") -> "Document":
        """Load a document from a text file."""
        with open(path, "r", encoding=encoding) as handle:
            return cls(handle.read(), name=os.fspath(path))

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def text(self) -> str:
        """The underlying string."""
        return self._text

    @property
    def name(self) -> str | None:
        """An optional human-readable name (e.g. the source path)."""
        return self._name

    def __len__(self) -> int:
        return len(self._text)

    def __iter__(self) -> Iterator[str]:
        return iter(self._text)

    def alphabet(self) -> frozenset[str]:
        """The set of symbols occurring in the document."""
        return frozenset(self._text)

    def __getitem__(self, key: object) -> str:
        if isinstance(key, Span):
            return key.content(self._text)
        if isinstance(key, (int, slice)):
            return self._text[key]
        raise TypeError(f"cannot index a document with {key!r}")

    def span(self) -> Span:
        """The span covering the whole document."""
        return Span(0, len(self._text))

    def spans(self) -> Iterator[Span]:
        """Iterate over every span of the document (``O(|d|²)`` of them)."""
        n = len(self._text)
        for begin in range(n + 1):
            for end in range(begin, n + 1):
                yield Span(begin, end)

    def find_all(self, needle: str) -> Iterator[Span]:
        """Yield the spans of every (possibly overlapping) occurrence of *needle*."""
        if needle == "":
            raise SpanError("cannot search for the empty string")
        start = self._text.find(needle)
        while start != -1:
            yield Span(start, start + len(needle))
            start = self._text.find(needle, start + 1)

    def lines(self) -> Iterator[tuple[Span, str]]:
        """Yield ``(span, line)`` pairs, one per line (newline excluded)."""
        begin = 0
        for line in self._text.splitlines(keepends=True):
            stripped = line.rstrip("\n")
            yield Span(begin, begin + len(stripped)), stripped
            begin += len(line)

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Document):
            return self._text == other._text
        if isinstance(other, str):
            return self._text == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._text)

    def __repr__(self) -> str:
        preview = self._text if len(self._text) <= 40 else self._text[:37] + "..."
        if self._name:
            return f"Document({preview!r}, name={self._name!r})"
        return f"Document({preview!r})"


def concatenate(documents: Iterable[Document | str], separator: str = "") -> Document:
    """Concatenate several documents into one."""
    return Document(separator.join(as_text(d) for d in documents))
