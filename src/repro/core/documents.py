"""Documents: the strings from which information is extracted.

A document is simply a finite string over a finite alphabet.  Most library
entry points accept either a plain ``str`` or a :class:`Document`; the class
exists to carry convenience helpers (alphabet extraction, span slicing,
position arithmetic) and to make benchmark workloads self-describing.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator

from repro.core.errors import SpanError
from repro.core.spans import Span

__all__ = ["Document", "DocumentCollection", "as_text"]


def as_text(document: object) -> str:
    """Normalize a document argument (``str`` or :class:`Document`) to ``str``."""
    if isinstance(document, str):
        return document
    if isinstance(document, Document):
        return document.text
    text = getattr(document, "text", None)
    if isinstance(text, str):
        return text
    raise TypeError(f"expected a document (str or Document), got {document!r}")


class Document:
    """A wrapper around an input string.

    >>> doc = Document("John<j@g.be>, Jane<555-12>")
    >>> len(doc)
    26
    >>> doc[Span(0, 4)]
    'John'
    """

    __slots__ = ("_text", "_name", "_encodings")

    #: How many per-signature encodings one document retains (see
    #: :meth:`store_encoding`); evaluating the same document under more
    #: distinct alphabet classings than this evicts the least recently
    #: used entry.  Sized for a hybrid plan with several distinctly
    #: classed fused leaves over one document.
    MAX_CACHED_ENCODINGS = 8

    def __init__(self, text: str, name: str | None = None) -> None:
        if not isinstance(text, str):
            raise TypeError(f"document text must be a string, got {text!r}")
        self._text = text
        self._name = name
        self._encodings: dict | None = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_file(cls, path: str | os.PathLike, encoding: str = "utf-8") -> "Document":
        """Load a document from a text file."""
        with open(path, "r", encoding=encoding) as handle:
            return cls(handle.read(), name=os.fspath(path))

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def text(self) -> str:
        """The underlying string."""
        return self._text

    @property
    def name(self) -> str | None:
        """An optional human-readable name (e.g. the source path)."""
        return self._name

    def __len__(self) -> int:
        return len(self._text)

    def __iter__(self) -> Iterator[str]:
        return iter(self._text)

    def alphabet(self) -> frozenset[str]:
        """The set of symbols occurring in the document."""
        return frozenset(self._text)

    def __getitem__(self, key: object) -> str:
        if isinstance(key, Span):
            return key.content(self._text)
        if isinstance(key, (int, slice)):
            return self._text[key]
        raise TypeError(f"cannot index a document with {key!r}")

    def span(self) -> Span:
        """The span covering the whole document."""
        return Span(0, len(self._text))

    def spans(self) -> Iterator[Span]:
        """Iterate over every span of the document (``O(|d|²)`` of them)."""
        n = len(self._text)
        for begin in range(n + 1):
            for end in range(begin, n + 1):
                yield Span(begin, end)

    def find_all(self, needle: str) -> Iterator[Span]:
        """Yield the spans of every (possibly overlapping) occurrence of *needle*."""
        if needle == "":
            raise SpanError("cannot search for the empty string")
        start = self._text.find(needle)
        while start != -1:
            yield Span(start, start + len(needle))
            start = self._text.find(needle, start + 1)

    # ------------------------------------------------------------------ #
    # Encoded-form cache (filled by repro.runtime.encoding)
    # ------------------------------------------------------------------ #
    #
    # The compiled engines translate a document into a flat class-id buffer
    # before evaluating it (one C-level pass, see
    # :mod:`repro.runtime.encoding`).  That buffer depends only on the text
    # and the automaton's alphabet-classing *signature*, so the document
    # itself is the natural cache: repeated ``enumerate``/``count`` calls,
    # every fused leaf of a hybrid plan and every batch engine invocation
    # reuse one pass per signature.  The keys are opaque hashables — this
    # module knows nothing about the runtime layer.

    def cached_encoding(self, signature: object):
        """The cached encoded form for *signature*, or ``None``.

        A hit refreshes the entry's recency, so a plan cycling through
        several signatures keeps its working set alive (LRU, not FIFO).
        """
        encodings = self._encodings
        if encodings is None:
            return None
        encoded = encodings.get(signature)
        if encoded is not None:
            encodings[signature] = encodings.pop(signature)
        return encoded

    def store_encoding(self, signature: object, encoded: object) -> None:
        """Cache *encoded* under *signature* (LRU-bounded per document)."""
        encodings = self._encodings
        if encodings is None:
            encodings = self._encodings = {}
        elif (
            signature not in encodings
            and len(encodings) >= self.MAX_CACHED_ENCODINGS
        ):
            encodings.pop(next(iter(encodings)))
        encodings[signature] = encoded

    def cached_encodings(self) -> int:
        """How many encoded forms this document currently caches."""
        return 0 if self._encodings is None else len(self._encodings)

    # The cache never crosses a process boundary: workers rebuild encodings
    # against their own compiled automata, and shipping buffers would bloat
    # every pickled chunk of the batch engine.  Shard workers
    # (repro.runtime.sharding) never see a Document at all for the same
    # reason — pickling one would drop this cache and force each worker to
    # re-encode the full text, so shard tasks ship only the worker's own
    # slice of the already-encoded class-id buffer.

    def __getstate__(self) -> tuple[str, str | None]:
        return (self._text, self._name)

    def __setstate__(self, state: tuple[str, str | None]) -> None:
        self._text, self._name = state
        self._encodings = None

    def iter_chunks(self, chunk_size: int) -> Iterator[str]:
        """Yield the text in consecutive slices of at most *chunk_size* chars.

        The chunk protocol of the streaming evaluator
        (:mod:`repro.runtime.streaming`): consumers that feed chunks
        never need the per-document encoding cache, so chunked
        evaluation keeps peak memory at one encoded chunk instead of a
        whole-document class-id buffer.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk size must be positive, got {chunk_size}")
        text = self._text
        for begin in range(0, len(text), chunk_size):
            yield text[begin : begin + chunk_size]

    def lines(self) -> Iterator[tuple[Span, str]]:
        """Yield ``(span, line)`` pairs, one per line (terminator excluded).

        Lines are split exactly as :meth:`str.splitlines` does, so every
        terminator it recognizes (``\\n``, ``\\r\\n``, ``\\r``, ``\\v``,
        ``\\f``, ...) ends a line, and the yielded text and span stop
        before the terminator rather than just before a trailing ``\\n``.
        """
        begin = 0
        for line in self._text.splitlines(keepends=True):
            # Re-splitting one keepends chunk strips whatever terminator
            # ended it, without hard-coding the terminator set.
            stripped = line.splitlines()[0] if line else line
            yield Span(begin, begin + len(stripped)), stripped
            begin += len(line)

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Document):
            return self._text == other._text
        if isinstance(other, str):
            return self._text == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._text)

    def __repr__(self) -> str:
        preview = self._text if len(self._text) <= 40 else self._text[:37] + "..."
        if self._name:
            return f"Document({preview!r}, name={self._name!r})"
        return f"Document({preview!r})"


def concatenate(documents: Iterable[Document | str], separator: str = "") -> Document:
    """Concatenate several documents into one."""
    return Document(separator.join(as_text(d) for d in documents))


class DocumentCollection:
    """An ordered, identified set of documents evaluated as one batch.

    The batch engine (:mod:`repro.runtime.batch`) consumes collections:
    every document carries a stable ``doc_id`` so that streamed results can
    be attributed, and :meth:`alphabet` gives the union alphabet needed to
    compile a wildcard pattern once for the whole batch.

    >>> collection = DocumentCollection.from_texts(["abc", "abd"])
    >>> len(collection)
    2
    >>> [doc_id for doc_id, _ in collection.items()]
    ['doc-0', 'doc-1']
    """

    __slots__ = ("_documents", "_name", "_alphabet")

    def __init__(
        self,
        documents: Iterable[Document | str] | dict[object, Document | str] = (),
        name: str | None = None,
    ) -> None:
        self._documents: dict[object, Document] = {}
        self._name = name
        self._alphabet: frozenset[str] | None = None
        if isinstance(documents, dict):
            for doc_id, document in documents.items():
                self.add(document, doc_id=doc_id)
        else:
            for document in documents:
                self.add(document)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_texts(
        cls, texts: Iterable[str], prefix: str = "doc", name: str | None = None
    ) -> "DocumentCollection":
        """Build a collection from plain strings with ids ``{prefix}-{i}``."""
        collection = cls(name=name)
        for index, text in enumerate(texts):
            collection.add(Document(text), doc_id=f"{prefix}-{index}")
        return collection

    @classmethod
    def coerce(
        cls, documents: "DocumentCollection | Iterable[Document | str]"
    ) -> "DocumentCollection":
        """Return *documents* as a collection.

        An existing collection passes through unchanged; any other iterable
        of documents gets ids assigned by the one canonical policy (the
        document's ``name`` if set, its position otherwise).  A bare string
        is rejected — it is almost certainly a single document, not a
        collection of characters.
        """
        if isinstance(documents, cls):
            return documents
        if isinstance(documents, str):
            raise TypeError(
                "expected a collection of documents; wrap a single document "
                "in a list or a DocumentCollection"
            )
        collection = cls()
        for index, document in enumerate(documents):
            name = getattr(document, "name", None)
            collection.add(document, doc_id=name if name is not None else index)
        return collection

    @classmethod
    def from_files(
        cls, paths: Iterable[str | os.PathLike], encoding: str = "utf-8"
    ) -> "DocumentCollection":
        """Load one document per path, keyed by the path itself."""
        collection = cls()
        for path in paths:
            collection.add(Document.from_file(path, encoding=encoding))
        return collection

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add(self, document: Document | str, doc_id: object = None) -> object:
        """Append *document* under *doc_id* (defaults to its name or index)."""
        if isinstance(document, str):
            document = Document(document)
        if not isinstance(document, Document):
            raise TypeError(f"expected a document (str or Document), got {document!r}")
        if doc_id is None:
            doc_id = document.name if document.name is not None else len(self._documents)
        if doc_id in self._documents:
            raise ValueError(f"duplicate document id {doc_id!r} in collection")
        self._documents[doc_id] = document
        self._alphabet = None
        return doc_id

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str | None:
        """An optional human-readable name for the collection."""
        return self._name

    def ids(self) -> list[object]:
        """The document ids, in insertion order."""
        return list(self._documents)

    def items(self) -> Iterator[tuple[object, Document]]:
        """Iterate over ``(doc_id, document)`` pairs in insertion order."""
        return iter(self._documents.items())

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents.values())

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._documents

    def __getitem__(self, doc_id: object) -> Document:
        try:
            return self._documents[doc_id]
        except KeyError:
            raise KeyError(f"no document with id {doc_id!r} in collection") from None

    def alphabet(self) -> frozenset[str]:
        """The union of the documents' alphabets (memoized until mutation).

        Batch evaluation derives its compilation key — and therefore the
        alphabet-classing signature every document is encoded under — from
        this set, so it is computed once per collection state, not once per
        ``run_batch`` call.
        """
        if self._alphabet is None:
            found: set[str] = set()
            for document in self._documents.values():
                found.update(document.text)
            self._alphabet = frozenset(found)
        return self._alphabet

    def encode_all(self, classing) -> int:
        """Pre-encode every document under *classing*, returning the count
        of fresh passes.

        Each member document caches its buffer on itself (see
        :meth:`Document.store_encoding`), so a document appearing several
        times in the collection — or evaluated again later under the same
        signature — is translated exactly once.
        """
        fresh = 0
        for document in self._documents.values():
            if document.cached_encoding(classing.signature) is None:
                fresh += 1
            classing.encode(document)
        return fresh

    def total_length(self) -> int:
        """The summed length of all documents (batch throughput denominator)."""
        return sum(len(document) for document in self._documents.values())

    def chunks(self, size: int) -> Iterator["DocumentCollection"]:
        """Split into sub-collections of at most *size* documents, in order.

        Ids are preserved, so each chunk can be dispatched (e.g. to a
        separate batch run) and the results remain attributable.
        """
        if size < 1:
            raise ValueError(f"chunk size must be positive, got {size}")
        chunk = DocumentCollection(name=self._name)
        for doc_id, document in self._documents.items():
            chunk.add(document, doc_id=doc_id)
            if len(chunk) >= size:
                yield chunk
                chunk = DocumentCollection(name=self._name)
        if len(chunk):
            yield chunk

    def __repr__(self) -> str:
        label = f" name={self._name!r}" if self._name else ""
        return f"DocumentCollection({len(self._documents)} documents{label})"
