"""Spans: contiguous regions of a document.

The paper models a span as a pair ``[i, j⟩`` of 1-based positions with
``1 ≤ i ≤ j ≤ |d| + 1``; its content is the substring from position ``i``
to ``j - 1``.  This library uses the equivalent, Python-friendly 0-based
half-open convention: a :class:`Span` is a pair ``(begin, end)`` with
``0 ≤ begin ≤ end`` and content ``d[begin:end]``.  The helper
:meth:`Span.paper_notation` renders the 1-based form used in the paper's
figures, which the integration tests rely on to reproduce Figure 1 exactly.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.errors import SpanError

__all__ = ["Span"]


class Span:
    """A half-open interval ``[begin, end)`` over document positions.

    Spans are immutable, hashable and totally ordered (lexicographically by
    ``(begin, end)``), so they can be used as dictionary keys, stored in
    sets, and sorted to produce deterministic output orders.

    >>> s = Span(0, 4)
    >>> s.content("John and Jane")
    'John'
    >>> s.paper_notation()
    '[1, 5⟩'
    """

    __slots__ = ("_begin", "_end")

    def __init__(self, begin: int, end: int) -> None:
        if not isinstance(begin, int) or not isinstance(end, int):
            raise SpanError(f"span endpoints must be integers, got ({begin!r}, {end!r})")
        if begin < 0:
            raise SpanError(f"span begin must be non-negative, got {begin}")
        if end < begin:
            raise SpanError(f"span end must be >= begin, got [{begin}, {end})")
        self._begin = begin
        self._end = end

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def begin(self) -> int:
        """The 0-based position of the first character covered by the span."""
        return self._begin

    @property
    def end(self) -> int:
        """The 0-based position one past the last character covered."""
        return self._end

    def __len__(self) -> int:
        return self._end - self._begin

    @property
    def is_empty(self) -> bool:
        """Whether the span covers no characters (``begin == end``)."""
        return self._begin == self._end

    def content(self, document: object) -> str:
        """Return the substring of *document* covered by this span.

        *document* may be a plain string or anything exposing a ``text``
        attribute (such as :class:`repro.core.documents.Document`).
        """
        text = document if isinstance(document, str) else getattr(document, "text")
        if self._end > len(text):
            raise SpanError(
                f"span {self} does not fit document of length {len(text)}"
            )
        return text[self._begin:self._end]

    def fits(self, document: object) -> bool:
        """Whether the span lies inside *document*."""
        text = document if isinstance(document, str) else getattr(document, "text")
        return self._end <= len(text)

    # ------------------------------------------------------------------ #
    # Relations between spans
    # ------------------------------------------------------------------ #

    def concatenate(self, other: "Span") -> "Span":
        """Concatenate two adjacent spans (paper: ``s1 · s2``).

        Requires ``self.end == other.begin``.
        """
        if self._end != other._begin:
            raise SpanError(f"cannot concatenate non-adjacent spans {self} and {other}")
        return Span(self._begin, other._end)

    def contains(self, other: "Span") -> bool:
        """Whether *other* lies entirely inside this span."""
        return self._begin <= other._begin and other._end <= self._end

    def overlaps(self, other: "Span") -> bool:
        """Whether the two spans share at least one character position."""
        return self._begin < other._end and other._begin < self._end

    def precedes(self, other: "Span") -> bool:
        """Whether this span ends before (or exactly where) *other* begins."""
        return self._end <= other._begin

    def shift(self, offset: int) -> "Span":
        """Return a copy of the span translated by *offset* positions."""
        return Span(self._begin + offset, self._end + offset)

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #

    @classmethod
    def from_paper(cls, i: int, j: int) -> "Span":
        """Build a span from the paper's 1-based ``[i, j⟩`` notation."""
        if i < 1 or j < i:
            raise SpanError(f"invalid paper span [{i}, {j}⟩")
        return cls(i - 1, j - 1)

    def to_paper(self) -> tuple[int, int]:
        """Return the 1-based pair ``(i, j)`` used in the paper."""
        return (self._begin + 1, self._end + 1)

    def paper_notation(self) -> str:
        """Render the span as the paper writes it, e.g. ``'[1, 5⟩'``."""
        i, j = self.to_paper()
        return f"[{i}, {j}⟩"

    def as_slice(self) -> slice:
        """Return the equivalent Python ``slice`` object."""
        return slice(self._begin, self._end)

    def positions(self) -> Iterator[int]:
        """Iterate over the character positions covered by the span."""
        return iter(range(self._begin, self._end))

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return self._begin == other._begin and self._end == other._end

    def __lt__(self, other: "Span") -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return (self._begin, self._end) < (other._begin, other._end)

    def __le__(self, other: "Span") -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return (self._begin, self._end) <= (other._begin, other._end)

    def __gt__(self, other: "Span") -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return (self._begin, self._end) > (other._begin, other._end)

    def __ge__(self, other: "Span") -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return (self._begin, self._end) >= (other._begin, other._end)

    def __hash__(self) -> int:
        return hash((self._begin, self._end))

    def __iter__(self) -> Iterator[int]:
        # Allows ``begin, end = span`` unpacking.
        yield self._begin
        yield self._end

    def __repr__(self) -> str:
        return f"Span({self._begin}, {self._end})"
