"""Exception hierarchy used across the library.

Every exception raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "CompilationError",
    "EvaluationError",
    "NotDeterministicError",
    "NotFunctionalError",
    "NotSequentialError",
    "ParseError",
    "ReproError",
    "ResourceLimitError",
    "SpanError",
    "StreamingError",
    "TaskDeadlineError",
    "WorkerCrashError",
]


class ReproError(Exception):
    """Base class of all exceptions raised by the library."""


class SpanError(ReproError, ValueError):
    """Raised when a span is malformed or does not fit a document."""


class ParseError(ReproError, ValueError):
    """Raised when a regex formula cannot be parsed."""


class CompilationError(ReproError):
    """Raised when a spanner cannot be compiled into the requested form."""


class EvaluationError(ReproError):
    """Raised when a spanner cannot be evaluated over a document."""


class NotSequentialError(EvaluationError):
    """Raised when an algorithm requires a sequential automaton.

    The constant-delay algorithm of the paper (Section 3.2) requires the
    extended VA to be *sequential*: every accepting run opens and closes
    variables consistently.  Non-sequential automata must first be
    sequentialized (see :mod:`repro.automata.transforms`).
    """


class NotDeterministicError(EvaluationError):
    """Raised when an algorithm requires a deterministic extended VA.

    Determinism guarantees that distinct accepting runs produce distinct
    mappings, which is what makes duplicate-free enumeration possible
    without an explicit deduplication step.
    """


class NotFunctionalError(EvaluationError):
    """Raised when an algorithm requires a functional automaton."""


class ResourceLimitError(EvaluationError):
    """Raised when a document exceeds a configured resource budget.

    The guards (:class:`repro.runtime.resilience.ResourceBudget`, the
    server's per-session arena-cell cap) raise this *before* an
    evaluation can exhaust a worker's memory.  Deterministic: the same
    document trips the same budget on every attempt, so the supervised
    executors never retry it — they quarantine or propagate.
    """


class WorkerCrashError(EvaluationError):
    """Raised when a pool worker died (or its task was lost) for good.

    The supervised executors (:mod:`repro.runtime.resilience`) only
    raise this after the retry budget, the one pool rebuild and — when
    enabled — the inline fallback are all exhausted or disabled; a
    single worker death is normally absorbed by a resubmission.
    """


class TaskDeadlineError(WorkerCrashError):
    """Raised when a pooled task missed its per-task deadline.

    A deadline miss is indistinguishable from a hung or silently dead
    worker (``multiprocessing.Pool`` never fails the task of a worker
    that died mid-run), so this is a :class:`WorkerCrashError` — callers
    treating crashes and hangs alike catch the base class.
    """


class StreamingError(EvaluationError):
    """Raised when a chunk-fed evaluation cannot proceed.

    Covers protocol misuse (feeding a finished stream, a ``str`` chunk
    while a partial UTF-8 sequence is pending), byte streams that end
    inside a multi-byte sequence, and — under ``emit="incremental"`` —
    characters outside the declared alphabet arriving *after* mappings
    have been delivered, which such a character would retract.
    """
