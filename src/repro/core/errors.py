"""Exception hierarchy used across the library.

Every exception raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "CompilationError",
    "EvaluationError",
    "NotDeterministicError",
    "NotFunctionalError",
    "NotSequentialError",
    "ParseError",
    "ReproError",
    "SpanError",
    "StreamingError",
]


class ReproError(Exception):
    """Base class of all exceptions raised by the library."""


class SpanError(ReproError, ValueError):
    """Raised when a span is malformed or does not fit a document."""


class ParseError(ReproError, ValueError):
    """Raised when a regex formula cannot be parsed."""


class CompilationError(ReproError):
    """Raised when a spanner cannot be compiled into the requested form."""


class EvaluationError(ReproError):
    """Raised when a spanner cannot be evaluated over a document."""


class NotSequentialError(EvaluationError):
    """Raised when an algorithm requires a sequential automaton.

    The constant-delay algorithm of the paper (Section 3.2) requires the
    extended VA to be *sequential*: every accepting run opens and closes
    variables consistently.  Non-sequential automata must first be
    sequentialized (see :mod:`repro.automata.transforms`).
    """


class NotDeterministicError(EvaluationError):
    """Raised when an algorithm requires a deterministic extended VA.

    Determinism guarantees that distinct accepting runs produce distinct
    mappings, which is what makes duplicate-free enumeration possible
    without an explicit deduplication step.
    """


class NotFunctionalError(EvaluationError):
    """Raised when an algorithm requires a functional automaton."""


class StreamingError(EvaluationError):
    """Raised when a chunk-fed evaluation cannot proceed.

    Covers protocol misuse (feeding a finished stream, a ``str`` chunk
    while a partial UTF-8 sequence is pending), byte streams that end
    inside a multi-byte sequence, and — under ``emit="incremental"`` —
    characters outside the declared alphabet arriving *after* mappings
    have been delivered, which such a character would retract.
    """
