"""Dependency-free line-coverage measurement for the test suite.

CI gates coverage with ``pytest-cov`` (see ``.github/workflows/ci.yml``
and the number recorded in CONTRIBUTING.md).  This script exists for
environments without the plugin: it measures line coverage of
``src/repro`` over the whole test suite using only the standard library,
so the committed ``--cov-fail-under`` floor can be (re-)derived anywhere.

Executable lines are taken from the compiled code objects' ``co_lines``
tables (the same source of truth ``coverage.py`` uses for its line
numbers), and hits are collected with ``sys.settrace``.  A per-code-object
saturation check disables tracing of frames whose lines have all been
seen, which keeps the slowdown tolerable on hot loops.

Usage::

    python tools/measure_coverage.py [pytest args...]

Prints per-file and total percentages; exits non-zero if pytest failed.
"""

from __future__ import annotations

import os
import sys
import threading

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")


def executable_lines(path: str) -> set[int]:
    """The line numbers carrying instructions, per the compiled code."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    lines: set[int] = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _start, _end, line in code.co_lines():
            if line is not None:
                lines.add(line)
        for constant in code.co_consts:
            if hasattr(constant, "co_lines"):
                stack.append(constant)
    return lines


def main(argv: list[str]) -> int:
    targets: dict[str, set[int]] = {}
    for directory, _subdirs, files in os.walk(SRC_ROOT):
        for name in files:
            if name.endswith(".py"):
                path = os.path.join(directory, name)
                targets[path] = executable_lines(path)

    hits: dict[str, set[int]] = {path: set() for path in targets}
    saturated: set = set()

    def local_trace(frame, event, _arg):
        if event == "line":
            hits[frame.f_code.co_filename].add(frame.f_lineno)
        return local_trace

    # The win comes from skipping already-covered code objects entirely,
    # so saturation is (re-)checked once per call, not per line.
    def call_checkpoint(frame, event, _arg):
        if event == "call":
            code = frame.f_code
            if code.co_filename in hits and code not in saturated:
                lines = {line for _s, _e, line in code.co_lines() if line is not None}
                if lines <= hits[code.co_filename]:
                    saturated.add(code)
                    return None
                return local_trace
            return None
        return None

    sys.settrace(call_checkpoint)
    threading.settrace(call_checkpoint)
    try:
        import pytest

        exit_code = pytest.main(argv or ["-q", "-p", "no:cacheprovider"])
    finally:
        sys.settrace(None)
        threading.settrace(None)

    total_executable = total_hit = 0
    rows = []
    for path in sorted(targets):
        executable = targets[path]
        hit = hits[path] & executable
        total_executable += len(executable)
        total_hit += len(hit)
        if executable:
            rows.append(
                (
                    os.path.relpath(path, REPO_ROOT),
                    len(hit),
                    len(executable),
                    100.0 * len(hit) / len(executable),
                )
            )
    width = max(len(row[0]) for row in rows)
    for name, hit, executable, percent in rows:
        print(f"{name:<{width}}  {hit:>5}/{executable:<5}  {percent:6.1f}%")
    percent = 100.0 * total_hit / total_executable if total_executable else 0.0
    print(f"\nTOTAL: {total_hit}/{total_executable} lines = {percent:.2f}%")
    return int(exit_code)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
