#!/usr/bin/env python
"""Lint: the Algorithm-1 position loop must live only in the kernel module.

The kernel-spec refactor folded every engine's hand-written inner loop
into the generated kernels of :mod:`repro.runtime.kernel`.  History shows
the loops re-grow: an engine gains a "temporary" specialized copy of the
capturing/reading alternation, the copies drift, and the bit-identity
contract between engines quietly breaks.  This check fails CI the moment
a raw position loop reappears outside the kernel module.

Heuristic: a file under ``src/repro/`` (other than ``runtime/kernel.py``)
is flagged when it contains all three signatures of a hand-written
Algorithm-1 loop —

* a position loop header (``while pos < n``),
* a capturing-phase call (``capturing(``), and
* a dense-table read (``class_table`` or ``letter_successor``).

Any one of them alone is fine (helpers sprint, planners mention tables);
together they only ever occur in an inlined inner loop.  Generated kernel
*source* lives in string fragments inside the kernel module itself, which
is exempt.

Usage::

    python tools/check_single_kernel.py [root]

Exits 0 when clean, 1 with a per-file report otherwise.
"""

from __future__ import annotations

import sys
from pathlib import Path

EXEMPT = ("runtime/kernel.py",)

LOOP_HEADER = "while pos < n"
CAPTURE_CALL = "capturing("
TABLE_READS = ("class_table", "letter_successor")


def violations(root: Path) -> list[str]:
    flagged = []
    for path in sorted((root / "src" / "repro").rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        if relative.endswith(EXEMPT):
            continue
        text = path.read_text(encoding="utf-8")
        if (
            LOOP_HEADER in text
            and CAPTURE_CALL in text
            and any(read in text for read in TABLE_READS)
        ):
            flagged.append(relative)
    return flagged


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    flagged = violations(root)
    if flagged:
        print(
            "Algorithm-1 position loop found outside repro/runtime/kernel.py "
            "(engines must bind a KernelSpec instead of inlining the loop):"
        )
        for relative in flagged:
            print(f"  {relative}")
        return 1
    print("single-kernel check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
