"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that legacy editable installs (``pip install -e .`` without the ``wheel``
package, as in offline environments) keep working.
"""

from setuptools import setup

setup()
